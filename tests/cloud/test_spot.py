"""Spot/preemptible VM model: idempotent kills, billing to the kill
time, SGE node-loss semantics, deterministic reclaim injection, and
non-blocking (async) provisioning."""

import pytest

from repro.cloud.clock import EventQueue, SimClock
from repro.cloud.cluster import ClusterError, build_cluster
from repro.cloud.ec2 import EC2Region
from repro.cloud.sge import JobState, SGEJob
from repro.cloud.spot import SpotPreemptor, preempt_vm
from repro.cloud.vm import VM, VMError, VMState


def sim():
    clock = SimClock()
    events = EventQueue(clock)
    region = EC2Region(clock)
    return clock, events, region


class TestVMKill:
    def test_kill_is_idempotent(self):
        clock, events, region = sim()
        (vm,) = region.run_instances("c3.2xlarge", 1)
        clock.advance(100)
        t_kill = clock.now
        assert vm.kill(t_kill) is True
        assert vm.state is VMState.TERMINATED
        assert vm.preempted
        # The race with normal teardown: a second kill is a no-op that
        # must not move the termination time.
        assert vm.kill(t_kill + 500) is False
        assert vm.terminated_at == t_kill

    def test_mark_terminated_still_raises_on_double(self):
        """kill() tolerates races; mark_terminated keeps catching real
        double-terminate bugs."""
        clock, events, region = sim()
        (vm,) = region.run_instances("c3.2xlarge", 1)
        vm.mark_terminated(clock.now)
        with pytest.raises(VMError):
            vm.mark_terminated(clock.now)

    def test_billing_stops_at_kill_time(self):
        clock, events, region = sim()
        (vm,) = region.run_instances("c3.2xlarge", 1)
        clock.advance(1000)
        vm.kill(clock.now)
        killed_at = clock.now
        clock.advance(5000)
        assert vm.billable_seconds(clock.now) == killed_at - vm.launched_at


class TestRegionPreempt:
    def test_preempt_bills_exactly_once(self):
        clock, events, region = sim()
        (vm,) = region.run_instances("c3.2xlarge", 1)
        clock.advance(100)
        line = region.preempt(vm)
        assert line is not None
        cost_after_first = region.total_cost
        assert cost_after_first > 0
        # Idempotent: the reclaim racing teardown bills nothing twice.
        assert region.preempt(vm) is None
        assert region.total_cost == cost_after_first

    def test_preempt_unknown_vm_raises(self):
        clock, events, region = sim()
        stray = VM(vm_id="i-zzzzzz", itype=region.run_instances(
            "c3.2xlarge", 1)[0].itype, launched_at=0.0)
        with pytest.raises(VMError):
            region.preempt(stray)

    def test_terminate_all_skips_preempted(self):
        clock, events, region = sim()
        vms = region.run_instances("c3.2xlarge", 2)
        clock.advance(100)
        region.preempt(vms[1])
        cost_mid = region.total_cost
        region.terminate_all()  # must not raise, must not re-bill vms[1]
        assert all(v.state is VMState.TERMINATED for v in vms)
        assert region.total_cost > cost_mid  # vms[0] billed once
        assert region.ledger.total_cost == region.total_cost


class TestNodeLoss:
    def cluster2(self):
        clock, events, region = sim()
        cluster = build_cluster(region, events, "c3.2xlarge", 2)
        return clock, events, region, cluster

    def test_running_job_fails_with_its_node(self):
        clock, events, region, cluster = self.cluster2()
        failed = []
        job = SGEJob(
            name="wide", slots=16, duration=1000.0,
            on_fail=failed.append,
        )
        cluster.scheduler.qsub(job)
        assert job.state is JobState.RUNNING
        worker = cluster.vms[1]
        victims = cluster.lose_vm(worker)
        assert victims == [job]
        assert job.state is JobState.FAILED
        assert worker.vm_id in job.error
        assert failed == [job]
        assert cluster.n_nodes == 1
        assert cluster.total_slots == 8

    def test_stale_finish_event_is_ignored(self):
        """SGE finish events cannot be cancelled: the dead job's pending
        completion must not resurrect it."""
        clock, events, region, cluster = self.cluster2()
        completed = []
        job = SGEJob(
            name="wide", slots=16, duration=1000.0,
            on_complete=completed.append,
        )
        cluster.scheduler.qsub(job)
        cluster.lose_vm(cluster.vms[1])
        events.run()  # fires the stale sge.finish event
        assert job.state is JobState.FAILED
        assert completed == []

    def test_starved_queued_job_fails(self):
        """A queued job sized for the pre-loss cluster that can never fit
        again must fail, not sit in the queue forever."""
        clock, events, region, cluster = self.cluster2()
        running = SGEJob(name="small", slots=8, duration=100.0)
        doomed_failures = []
        doomed = SGEJob(
            name="needs16", slots=16, duration=100.0,
            on_fail=doomed_failures.append,
        )
        cluster.scheduler.qsub(running)
        cluster.scheduler.qsub(doomed)
        assert doomed.state is JobState.QUEUED
        cluster.lose_vm(cluster.vms[1])
        assert doomed.state is JobState.FAILED
        assert "insufficient slots" in doomed.error
        assert doomed_failures == [doomed]
        # The fitting job keeps running and still completes.
        events.run()
        assert running.state is JobState.DONE

    def test_losing_head_is_fatal(self):
        clock, events, region, cluster = self.cluster2()
        with pytest.raises(ClusterError):
            cluster.lose_vm(cluster.head)

    def test_losing_unknown_vm_is_noop(self):
        clock, events, region, cluster = self.cluster2()
        (stranger,) = region.run_instances("c3.2xlarge", 1)
        assert cluster.lose_vm(stranger) == []
        assert cluster.n_nodes == 2


class TestSpotPreemptor:
    def test_strike_reclaims_last_worker(self):
        clock, events, region = sim()
        cluster = build_cluster(region, events, "c3.2xlarge", 3)
        seen = []
        preemptor = SpotPreemptor(
            region, events, cluster=cluster,
            protect={cluster.head.vm_id},
        )
        preemptor.on_preempt.append(seen.append)
        last_worker = cluster.vms[-1]
        preemptor.arm_in([10.0])
        events.run()
        assert preemptor.preempted == [last_worker]
        assert seen == [last_worker]
        assert last_worker.state is VMState.TERMINATED
        assert last_worker.preempted
        assert cluster.n_nodes == 2
        assert cluster.head.state is VMState.RUNNING

    def test_strikes_never_take_the_head(self):
        clock, events, region = sim()
        cluster = build_cluster(region, events, "c3.2xlarge", 2)
        preemptor = SpotPreemptor(
            region, events, cluster=cluster,
            protect={cluster.head.vm_id},
        )
        # Two strikes, one eligible worker: the second finds no victim.
        preemptor.arm_in([5.0, 10.0])
        events.run()
        assert len(preemptor.preempted) == 1
        assert cluster.head.state is VMState.RUNNING
        assert cluster.n_nodes == 1

    def test_preempt_vm_idempotent(self):
        clock, events, region = sim()
        cluster = build_cluster(region, events, "c3.2xlarge", 2)
        worker = cluster.vms[1]
        assert preempt_vm(region, cluster, worker) is True
        assert preempt_vm(region, cluster, worker) is False


class TestLaunchAsync:
    def test_vms_become_running_via_event(self):
        clock, events, region = sim()
        ready = []
        batch = region.launch_async(
            "c3.2xlarge", 2, events, on_ready=ready.extend
        )
        assert all(vm.state is VMState.PENDING for vm in batch)
        assert ready == []
        t0 = clock.now
        events.run()
        assert clock.now == t0 + region.provision_seconds
        assert all(vm.state is VMState.RUNNING for vm in batch)
        assert ready == batch

    def test_safe_with_pending_events(self):
        """The point of launch_async: growth from inside an event
        callback must not move the clock past later pending events."""
        clock, events, region = sim()
        order = []

        def grow():
            region.launch_async(
                "c3.2xlarge", 1, events,
                on_ready=lambda b: order.append("ready"),
            )

        events.schedule_in(10.0, grow)
        events.schedule_in(50.0, lambda: order.append("mid"))
        events.run()
        assert order == ["mid", "ready"]
