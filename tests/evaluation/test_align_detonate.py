"""Tests for the seed-and-vote aligner and the DETONATE metric analogs."""

import numpy as np
import pytest

from repro.assembly.contigs import Contig
from repro.evaluation.align import AlignmentIndex, align_contig
from repro.evaluation.detonate import evaluate
from repro.seq.alphabet import decode, random_dna, reverse_complement
from repro.seq.transcriptome import Transcript, Transcriptome
from repro.seq.alphabet import encode


def make_refs(n=3, length=400, seed=0):
    rng = np.random.default_rng(seed)
    return [decode(random_dna(length, rng)) for _ in range(n)]


def contig(seq, cid="c0"):
    return Contig(cid, seq, 10.0, 31, "test")


def txome(refs, weights=None):
    n = len(refs)
    weights = weights or [1.0 / n] * n
    return Transcriptome(
        "ref",
        [
            Transcript(f"t{i}", encode(s), w)
            for i, (s, w) in enumerate(zip(refs, weights))
        ],
    )


class TestAligner:
    def test_exact_substring_aligns_perfectly(self):
        refs = make_refs()
        index = AlignmentIndex(refs)
        aln = align_contig(index, refs[1][50:250])
        assert aln is not None
        assert aln.transcript_index == 1
        assert aln.ref_start == 50
        assert aln.length == 200
        assert aln.identity == 1.0
        assert aln.strand == 1

    def test_reverse_strand_detected(self):
        refs = make_refs()
        index = AlignmentIndex(refs)
        aln = align_contig(index, reverse_complement(refs[0][10:210]))
        assert aln is not None
        assert aln.transcript_index == 0
        assert aln.strand == -1
        assert aln.identity == 1.0

    def test_mismatches_counted(self):
        refs = make_refs()
        index = AlignmentIndex(refs)
        piece = list(refs[2][100:300])
        piece[50] = "A" if piece[50] != "A" else "C"
        piece[120] = "G" if piece[120] != "G" else "T"
        aln = align_contig(index, "".join(piece))
        assert aln is not None
        assert aln.matches == 198
        assert aln.length == 200

    def test_unrelated_sequence_no_alignment(self):
        refs = make_refs(seed=0)
        index = AlignmentIndex(refs)
        rng = np.random.default_rng(99)
        junk = decode(random_dna(150, rng))
        aln = align_contig(index, junk)
        assert aln is None or aln.identity < 0.5

    def test_seed_k_validation(self):
        with pytest.raises(ValueError):
            AlignmentIndex(["ACGT"], seed_k=4)

    def test_contig_overhang_clipped(self):
        refs = make_refs()
        index = AlignmentIndex(refs)
        rng = np.random.default_rng(5)
        overhang = decode(random_dna(30, rng))
        aln = align_contig(index, overhang + refs[0][:100])
        assert aln is not None
        assert aln.transcript_index == 0
        # alignment restricted to the overlapping window
        assert aln.length <= 130


class TestDetonate:
    def test_perfect_assembly(self):
        refs = make_refs(n=2, length=300)
        scores = evaluate([contig(r, f"c{i}") for i, r in enumerate(refs)],
                          txome(refs))
        assert scores.precision == pytest.approx(1.0)
        assert scores.recall == pytest.approx(1.0)
        assert scores.f1 == pytest.approx(1.0)
        assert scores.weighted_kmer_recall == pytest.approx(1.0)
        assert scores.kc_score <= scores.weighted_kmer_recall

    def test_half_assembly_recall(self):
        refs = make_refs(n=2, length=300)
        scores = evaluate([contig(refs[0])], txome(refs))
        assert scores.precision == pytest.approx(1.0)
        assert scores.recall == pytest.approx(0.5, abs=0.02)
        assert 0.4 < scores.weighted_kmer_recall < 0.6

    def test_weighting_matters(self):
        """Covering only the abundant transcript scores higher WKR than
        covering only the rare one."""
        refs = make_refs(n=2, length=300)
        t = txome(refs, weights=[0.9, 0.1])
        high = evaluate([contig(refs[0])], t)
        low = evaluate([contig(refs[1])], t)
        assert high.weighted_kmer_recall > low.weighted_kmer_recall
        # unweighted nucleotide recall is identical
        assert high.recall == pytest.approx(low.recall, abs=0.02)

    def test_junk_contig_lowers_precision(self):
        refs = make_refs(n=1, length=400)
        rng = np.random.default_rng(7)
        junk = decode(random_dna(400, rng))
        clean = evaluate([contig(refs[0])], txome(refs))
        dirty = evaluate([contig(refs[0]), contig(junk, "junk")], txome(refs))
        assert dirty.precision < clean.precision
        assert dirty.recall == pytest.approx(clean.recall, abs=0.01)

    def test_kc_penalizes_bloat(self):
        refs = make_refs(n=1, length=400)
        rng = np.random.default_rng(8)
        bloat = [contig(decode(random_dna(400, rng)), f"b{i}") for i in range(5)]
        lean = evaluate([contig(refs[0])], txome(refs), total_read_kmers=10_000)
        fat = evaluate([contig(refs[0])] + bloat, txome(refs),
                       total_read_kmers=10_000)
        assert fat.kc_score < lean.kc_score
        assert fat.weighted_kmer_recall == pytest.approx(
            lean.weighted_kmer_recall, abs=0.01
        )

    def test_empty_assembly(self):
        refs = make_refs(n=1)
        scores = evaluate([], txome(refs))
        assert scores.precision == 0.0
        assert scores.recall == 0.0
        assert scores.f1 == 0.0
        assert scores.n_contigs == 0

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            evaluate([], Transcriptome("e", []))

    def test_score_bounds(self):
        refs = make_refs(n=3)
        scores = evaluate(
            [contig(refs[0][:200]), contig(refs[1][100:250], "c1")], txome(refs)
        )
        for v in (scores.precision, scores.recall, scores.f1,
                  scores.weighted_kmer_recall):
            assert 0.0 <= v <= 1.0

    def test_tuple_accessor(self):
        refs = make_refs(n=1)
        scores = evaluate([contig(refs[0])], txome(refs))
        assert scores.nucleotide_tuple() == (
            scores.precision, scores.recall, scores.f1,
        )
