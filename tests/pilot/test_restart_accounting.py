"""Regression tests for the restart/accounting bugfix sweep.

Covers four bugs that corrupted results under retry and S2 VM reuse:

* ``reset_for_restart`` leaving the failed attempt's execution record in
  place (stale ``usage``/``result``/timestamps, bogus ``ttc``);
* the agent sizing units against the *cluster* instead of the pilot's
  declared slice (``launch_on`` onto a larger borrowed cluster);
* the restart loop re-placing a deterministically failing unit on the
  pilot it already failed on;
* ``merged_usage`` silently including FAILED units' usage.
"""

import pytest

from repro.cloud.clock import EventQueue, SimClock
from repro.cloud.cluster import build_cluster
from repro.cloud.ec2 import EC2Region
from repro.cloud.instances import GiB
from repro.parallel.usage import PhaseUsage, ResourceUsage
from repro.pilot.agent import PilotAgent, merged_usage
from repro.pilot.db import StateStore
from repro.pilot.description import PilotDescription, UnitDescription
from repro.pilot.manager import PilotManager, UnitFailureError, UnitManager
from repro.pilot.scheduler import SchedulingError
from repro.pilot.states import UnitState
from repro.pilot.unit import ComputeUnit


def sim():
    clock = SimClock()
    events = EventQueue(clock)
    region = EC2Region(clock)
    db = StateStore(clock)
    return clock, events, region, db


def make_work(compute=1e6, mem=10**7, ranks=8):
    def work():
        u = ResourceUsage(n_ranks=ranks)
        u.add_phase(
            PhaseUsage("w", "generic", critical_compute=compute,
                       total_compute=compute * ranks)
        )
        u.peak_rank_memory_bytes = mem
        return "result", u

    return work


def oom_desc(name="oom", max_restarts=0, **kw):
    # 1 GiB/rank at sim scale, scale=0.01 -> 100 GiB/rank: measured OOM
    # on every instance type in the catalogue.
    return UnitDescription(
        name=name, work=make_work(mem=10**9), cores=8, scale=0.01,
        max_restarts=max_restarts, **kw,
    )


class TestResetClearsExecutionRecord:
    def failed_unit(self):
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        pilot = pm.launch(pm.submit(PilotDescription("P", "c3.2xlarge", 1)))
        um = UnitManager(db, events)
        um.add_pilot(pilot)
        units = um.submit_units([oom_desc()])
        with pytest.raises(UnitFailureError):
            um.run(units)
        return units[0]

    def test_failed_attempt_records_usage(self):
        u = self.failed_unit()
        assert u.state is UnitState.FAILED
        assert u.usage is not None
        assert u.ttc > 0
        assert u.real_seconds is not None

    def test_reset_clears_everything(self):
        u = self.failed_unit()
        u.reset_for_restart()
        assert u.state is UnitState.UNSCHEDULED
        assert u.restarts == 1
        assert u.pilot_id is None
        assert u.error is None
        assert u.result is None
        assert u.usage is None
        assert u.started_at is None
        assert u.finished_at is None
        assert u.real_seconds is None
        assert u.ttc == 0.0

    def test_reset_unit_reports_no_usage(self):
        """The ISSUE scenario: a restarted unit that fails the *static*
        check (which returns before re-executing) must not report the
        dead attempt's usage through merged_usage or a bogus ttc."""
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        # Fits r3.2xlarge (61 GiB) statically but OOMs measured.
        big = pm.launch(pm.submit(PilotDescription("big", "r3.2xlarge", 1)))
        small = pm.launch(pm.submit(PilotDescription("small", "c3.2xlarge", 1)))
        desc = UnitDescription(
            name="u", work=make_work(mem=10**9), cores=8, scale=0.01,
            memory_bytes=40 * GiB,
        )
        unit = ComputeUnit(desc, db)
        unit.advance(UnitState.UNSCHEDULED)
        unit.advance(UnitState.SCHEDULING)
        unit.assign(big.pilot_id)
        agent = PilotAgent(pilot=big)
        agent.submit(unit)
        agent.drain()
        events.run()
        assert unit.state is UnitState.FAILED
        assert unit.usage is not None  # the dead attempt's record

        unit.reset_for_restart()
        unit.advance(UnitState.SCHEDULING)
        unit.assign(small.pilot_id)
        # 40 GiB declared does not fit c3.2xlarge: static check fails
        # before execution, so nothing new is recorded ...
        PilotAgent(pilot=small).submit(unit)
        assert unit.state is UnitState.FAILED
        assert "static" in unit.error
        # ... and the failed first attempt must not leak through.
        assert unit.usage is None
        assert unit.ttc == 0.0
        assert merged_usage([unit], include_failed=True).phases == []


class TestSliceCapping:
    def borrowed_pilot(self, pilot_nodes, cluster_nodes):
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        cluster = build_cluster(
            region, events, "c3.2xlarge", cluster_nodes, name="borrowed"
        )
        pilot = pm.submit(
            PilotDescription("P", "c3.2xlarge", n_nodes=pilot_nodes)
        )
        pm.launch_on(pilot, cluster)
        return clock, events, db, cluster, pilot

    def run_direct(self, agent, events, db, desc):
        unit = ComputeUnit(desc, db)
        unit.advance(UnitState.UNSCHEDULED)
        unit.advance(UnitState.SCHEDULING)
        unit.assign(agent.pilot.pilot_id)
        agent.submit(unit)
        agent.drain()
        events.run()
        return unit

    def test_slots_capped_at_pilot_slice(self):
        """A 1-node pilot on a 4-node borrowed cluster grants at most
        its own 8 slots, not the cluster's 32."""
        clock, events, db, cluster, pilot = self.borrowed_pilot(1, 4)
        agent = PilotAgent(pilot=pilot)
        desc = UnitDescription(
            name="wide", work=make_work(), cores=32, scale=0.01
        )
        unit = self.run_direct(agent, events, db, desc)
        assert unit.state is UnitState.DONE
        (job,) = cluster.scheduler.jobs.values()
        assert job.slots == 8
        assert sum(job.allocation.values()) == 8

    def test_slice_is_slower_than_whole_cluster(self):
        """The same unit takes longer on a 1-node slice than on a pilot
        that really owns all 4 nodes."""
        def ttc_with(pilot_nodes):
            clock, events, db, cluster, pilot = self.borrowed_pilot(
                pilot_nodes, 4
            )
            agent = PilotAgent(pilot=pilot)
            # 32 ranks oversubscribe the 8-core slice 4x (small per-rank
            # memory so packing them on one node stays within 16 GiB).
            desc = UnitDescription(
                name="wide", work=make_work(ranks=32, mem=10**6), cores=32,
                scale=0.01,
            )
            unit = self.run_direct(agent, events, db, desc)
            assert unit.state is UnitState.DONE
            return unit.ttc

        assert ttc_with(1) > ttc_with(4)

    def test_static_check_uses_slice_nodes(self):
        """Declared 20 GiB over cores=16 spans 2 nodes on the cluster
        but only 1 on the pilot's slice -> static OOM on c3 (16 GiB)."""
        clock, events, db, cluster, pilot = self.borrowed_pilot(1, 4)
        agent = PilotAgent(pilot=pilot)
        desc = UnitDescription(
            name="tall", work=make_work(), cores=16, scale=0.01,
            memory_bytes=20 * GiB,
        )
        unit = self.run_direct(agent, events, db, desc)
        assert unit.state is UnitState.FAILED
        assert "static" in unit.error


class TestRestartElsewhere:
    def test_no_same_pilot_retry_loop(self):
        """A deterministic OOM on the only pilot fails after ONE restart
        attempt with a SchedulingError — not after max_restarts loops on
        the pilot it already failed on."""
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        pilot = pm.launch(pm.submit(PilotDescription("P", "c3.2xlarge", 1)))
        um = UnitManager(db, events)
        um.add_pilot(pilot)
        units = um.submit_units([oom_desc(max_restarts=8)])
        with pytest.raises(SchedulingError):
            um.run(units)
        (u,) = units
        assert u.restarts == 1  # one reset, then no untried pilot
        assert u.state is UnitState.FAILED
        assert "untried" in u.error

    def test_each_pilot_tried_once(self):
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        pilots = [
            pm.launch(pm.submit(PilotDescription(f"P{i}", "c3.2xlarge", 1)))
            for i in range(3)
        ]
        um = UnitManager(db, events)
        for p in pilots:
            um.add_pilot(p)
        units = um.submit_units([oom_desc(max_restarts=10)])
        with pytest.raises(SchedulingError):
            um.run(units)
        (u,) = units
        assert u.restarts == 3
        tried = {
            r.value
            for r in db.history_of(u.unit_id, "pilot")
        }
        assert tried == {p.pilot_id for p in pilots}

    def test_restart_still_succeeds_elsewhere(self):
        """The healthy path: OOM on the small pilot, restart lands on
        the (untried) big pilot and finishes."""
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        small = pm.launch(pm.submit(PilotDescription("small", "c3.2xlarge", 1)))
        big = pm.launch(pm.submit(PilotDescription("big", "r3.2xlarge", 1)))
        um = UnitManager(db, events)
        um.add_pilot(small)
        um.add_pilot(big)
        # 40 GiB/rank at paper scale: OOMs c3 (16 GiB), fits r3 (61 GiB).
        desc = UnitDescription(
            name="u", work=make_work(mem=4 * 10**8, ranks=1), cores=8,
            scale=0.01, max_restarts=1,
        )
        units = um.submit_units([desc])
        um.run(units)
        (u,) = units
        assert u.state is UnitState.DONE
        assert u.pilot_id == big.pilot_id
        assert u.restarts == 1


class TestMergedUsage:
    def mixed_units(self):
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        pilot = pm.launch(pm.submit(PilotDescription("P", "r3.2xlarge", 2)))
        um = UnitManager(db, events)
        um.add_pilot(pilot)
        units = um.submit_units(
            [
                UnitDescription(
                    name="ok", work=make_work(mem=10**7), cores=8, scale=0.01
                ),
                oom_desc(name="dead"),
            ]
        )
        with pytest.raises(UnitFailureError):
            um.run(units)
        ok, dead = units
        assert ok.state is UnitState.DONE
        assert dead.state is UnitState.FAILED
        assert dead.usage is not None
        return units

    def test_default_excludes_failed(self):
        units = self.mixed_units()
        total = merged_usage(units)
        only_ok = merged_usage([units[0]])
        assert total.total_compute == only_ok.total_compute

    def test_include_failed_accounts_burnt_work(self):
        units = self.mixed_units()
        total = merged_usage(units, include_failed=True)
        assert total.total_compute > merged_usage(units).total_compute
