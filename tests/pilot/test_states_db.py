"""Tests for the state machines and the backend state store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloud.clock import SimClock
from repro.pilot.db import StateStore
from repro.pilot.states import (
    PILOT_FINAL,
    PILOT_TRANSITIONS,
    UNIT_FINAL,
    UNIT_TRANSITIONS,
    PilotState,
    StateError,
    UnitState,
    check_pilot_transition,
    check_unit_transition,
)


class TestPilotStates:
    def test_happy_path(self):
        path = [
            PilotState.NEW,
            PilotState.PENDING_LAUNCH,
            PilotState.LAUNCHING,
            PilotState.ACTIVE,
            PilotState.DONE,
        ]
        for a, b in zip(path, path[1:]):
            check_pilot_transition(a, b)

    def test_skip_rejected(self):
        with pytest.raises(StateError):
            check_pilot_transition(PilotState.NEW, PilotState.ACTIVE)

    def test_final_states_absorbing(self):
        for s in PILOT_FINAL:
            assert PILOT_TRANSITIONS[s] == frozenset()

    def test_cancel_from_anywhere_live(self):
        for s in (
            PilotState.NEW,
            PilotState.PENDING_LAUNCH,
            PilotState.LAUNCHING,
            PilotState.ACTIVE,
        ):
            check_pilot_transition(s, PilotState.CANCELED)

    @given(st.sampled_from(list(PilotState)), st.sampled_from(list(PilotState)))
    def test_table_is_authoritative(self, a, b):
        legal = b in PILOT_TRANSITIONS[a]
        if legal:
            check_pilot_transition(a, b)
        else:
            with pytest.raises(StateError):
                check_pilot_transition(a, b)


class TestUnitStates:
    def test_happy_path(self):
        path = [
            UnitState.NEW,
            UnitState.UNSCHEDULED,
            UnitState.SCHEDULING,
            UnitState.PENDING_EXECUTION,
            UnitState.EXECUTING,
            UnitState.DONE,
        ]
        for a, b in zip(path, path[1:]):
            check_unit_transition(a, b)

    def test_failed_can_restart(self):
        check_unit_transition(UnitState.FAILED, UnitState.UNSCHEDULED)

    def test_done_absorbing(self):
        assert UNIT_TRANSITIONS[UnitState.DONE] == frozenset()
        assert UNIT_TRANSITIONS[UnitState.CANCELED] == frozenset()

    def test_skip_rejected(self):
        with pytest.raises(StateError):
            check_unit_transition(UnitState.NEW, UnitState.EXECUTING)

    @given(st.sampled_from(list(UnitState)), st.sampled_from(list(UnitState)))
    def test_table_is_authoritative(self, a, b):
        legal = b in UNIT_TRANSITIONS[a]
        if legal:
            check_unit_transition(a, b)
        else:
            with pytest.raises(StateError):
                check_unit_transition(a, b)


class TestStateStore:
    def make(self):
        return StateStore(SimClock())

    def test_register_and_get(self):
        db = self.make()
        db.register("e1", state="NEW", name="thing")
        assert db.get("e1", "state") == "NEW"
        assert db.get("e1", "name") == "thing"
        assert db.get("e1", "missing", 42) == 42

    def test_double_register_rejected(self):
        db = self.make()
        db.register("e1")
        with pytest.raises(KeyError):
            db.register("e1")

    def test_update_unknown_rejected(self):
        db = self.make()
        with pytest.raises(KeyError):
            db.update("nope", "state", 1)

    def test_history_with_timestamps(self):
        clock = SimClock()
        db = StateStore(clock)
        db.register("e1", state="NEW")
        clock.advance(10)
        db.update("e1", "state", "ACTIVE")
        hist = db.history_of("e1", "state")
        assert [(r.value, r.timestamp) for r in hist] == [
            ("NEW", 0.0),
            ("ACTIVE", 10.0),
        ]

    def test_watchers_fire(self):
        db = self.make()
        seen = []
        db.watch(lambda e, f, v: seen.append((e, f, v)))
        db.register("e1", state="NEW")
        db.update("e1", "state", "GO")
        assert ("e1", "state", "NEW") in seen
        assert ("e1", "state", "GO") in seen

    def test_unsubscribe(self):
        db = self.make()
        seen = []
        unsub = db.watch(lambda e, f, v: seen.append(v))
        db.register("e1", x=1)
        unsub()
        db.update("e1", "x", 2)
        assert seen == [1]

    def test_timeline(self):
        db = self.make()
        db.register("a", state="NEW")
        db.register("b", state="NEW")
        db.update("a", "state", "DONE")
        tl = db.timeline("state")
        assert [v for _, _, v in tl] == ["NEW", "NEW", "DONE"]
