"""Integration tests for pilots, units, schedulers, agents and managers."""

import pytest

from repro.cloud.clock import EventQueue, SimClock
from repro.cloud.ec2 import EC2Region
from repro.cloud.instances import GiB
from repro.parallel.usage import PhaseUsage, ResourceUsage
from repro.pilot.db import StateStore
from repro.pilot.description import PilotDescription, UnitDescription
from repro.pilot.manager import (
    ManagerError,
    PilotManager,
    UnitFailureError,
    UnitManager,
)
from repro.pilot.pilot import Pilot
from repro.pilot.scheduler import (
    LoadBalancingScheduler,
    MemoryAwareScheduler,
    RoundRobinScheduler,
    SchedulingError,
    unit_fits_pilot,
)
from repro.pilot.states import PilotState, StateError, UnitState
from repro.pilot.unit import ComputeUnit


def sim():
    clock = SimClock()
    events = EventQueue(clock)
    region = EC2Region(clock)
    db = StateStore(clock)
    return clock, events, region, db


def make_work(compute=1e6, mem=10**7, ranks=8):
    def work():
        u = ResourceUsage(n_ranks=ranks)
        u.add_phase(
            PhaseUsage("w", "generic", critical_compute=compute,
                       total_compute=compute * ranks)
        )
        u.peak_rank_memory_bytes = mem
        return "result", u

    return work


def unit_desc(name="u", cores=8, scale=0.01, mem_paper=0, **kw):
    return UnitDescription(
        name=name, work=make_work(**kw), cores=cores, scale=scale,
        memory_bytes=mem_paper,
    )


class TestPilotLifecycle:
    def test_launch_builds_cluster(self):
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        pilot = pm.submit(PilotDescription("PA", "c3.2xlarge", n_nodes=3))
        assert pilot.state is PilotState.NEW
        pm.launch(pilot)
        assert pilot.state is PilotState.ACTIVE
        assert pilot.cluster.n_nodes == 3
        assert len(region.running()) == 3

    def test_finish_terminates_owned_vms(self):
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        pilot = pm.launch(pm.submit(PilotDescription("PA", "c3.2xlarge", 2)))
        pm.finish(pilot)
        assert pilot.state is PilotState.DONE
        assert region.running() == []
        assert region.total_cost > 0

    def test_s2_launch_on_existing_cluster(self):
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        p1 = pm.launch(pm.submit(PilotDescription("PA", "c3.2xlarge", 2)))
        cluster = p1.cluster
        pm.finish_keep_vms = None  # not part of API; S2 finishes pilots only
        p2 = pm.submit(PilotDescription("PB", "c3.2xlarge", 2))
        pm.launch_on(p2, cluster)
        assert p2.state is PilotState.ACTIVE
        assert p2.cluster is cluster
        assert not p2.owns_vms
        # finishing the borrowing pilot must NOT kill the shared VMs
        pm.finish(p2)
        assert len(region.running()) == 2

    def test_launch_on_mismatched_type_rejected(self):
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        p1 = pm.launch(pm.submit(PilotDescription("PA", "c3.2xlarge", 2)))
        p2 = pm.submit(PilotDescription("PB", "r3.2xlarge", 2))
        with pytest.raises(ManagerError):
            pm.launch_on(p2, p1.cluster)

    def test_launch_on_too_small_cluster_rejected(self):
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        p1 = pm.launch(pm.submit(PilotDescription("PA", "c3.2xlarge", 1)))
        p2 = pm.submit(PilotDescription("PB", "c3.2xlarge", 5))
        with pytest.raises(ManagerError):
            pm.launch_on(p2, p1.cluster)

    def test_state_history_in_db(self):
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        pilot = pm.launch(pm.submit(PilotDescription("PA", "c3.2xlarge", 1)))
        states = [r.value for r in db.history_of(pilot.pilot_id, "state")]
        assert states == [
            "NEW", "PENDING_LAUNCH", "LAUNCHING", "ACTIVE",
        ]

    def test_illegal_advance_rejected(self):
        clock, events, region, db = sim()
        pilot = Pilot(PilotDescription("P", "c3.2xlarge", 1), db)
        with pytest.raises(StateError):
            pilot.advance(PilotState.ACTIVE)


class TestSchedulers:
    def make_pilots(self, db):
        small = Pilot(PilotDescription("small", "c3.2xlarge", 1), db)
        big = Pilot(PilotDescription("big", "r3.2xlarge", 4), db)
        return small, big

    def test_fits_cores(self, ):
        clock, events, region, db = sim()
        small, big = self.make_pilots(db)
        u = ComputeUnit(unit_desc(cores=16), db)
        assert not unit_fits_pilot(u, small)
        assert unit_fits_pilot(u, big)

    def test_fits_memory(self):
        clock, events, region, db = sim()
        small, big = self.make_pilots(db)
        u = ComputeUnit(unit_desc(cores=8, mem_paper=40 * GiB), db)
        assert not unit_fits_pilot(u, small)  # 40 GiB > c3's 16 GiB
        assert unit_fits_pilot(u, big)

    def test_round_robin_cycles(self):
        clock, events, region, db = sim()
        a = Pilot(PilotDescription("a", "c3.2xlarge", 2), db)
        b = Pilot(PilotDescription("b", "c3.2xlarge", 2), db)
        units = [ComputeUnit(unit_desc(name=f"u{i}"), db) for i in range(4)]
        out = RoundRobinScheduler().schedule(units, [a, b])
        assert sorted(out.values()) == sorted(
            [a.pilot_id, b.pilot_id, a.pilot_id, b.pilot_id]
        )

    def test_memory_aware_prefers_cheap_when_fits(self):
        clock, events, region, db = sim()
        small, big = self.make_pilots(db)
        u = ComputeUnit(unit_desc(cores=8, mem_paper=8 * GiB), db)
        out = MemoryAwareScheduler().schedule([u], [small, big])
        assert out[u.unit_id] == small.pilot_id  # c3 is cheaper

    def test_memory_aware_escalates(self):
        clock, events, region, db = sim()
        small, big = self.make_pilots(db)
        u = ComputeUnit(unit_desc(cores=8, mem_paper=40 * GiB), db)
        out = MemoryAwareScheduler().schedule([u], [small, big])
        assert out[u.unit_id] == big.pilot_id

    def test_no_fit_raises(self):
        clock, events, region, db = sim()
        small, _ = self.make_pilots(db)
        u = ComputeUnit(unit_desc(cores=8, mem_paper=400 * GiB), db)
        for sched in (RoundRobinScheduler(), MemoryAwareScheduler(),
                      LoadBalancingScheduler()):
            with pytest.raises(SchedulingError):
                sched.schedule([u], [small])

    def test_no_pilots_raises(self):
        clock, events, region, db = sim()
        u = ComputeUnit(unit_desc(), db)
        with pytest.raises(SchedulingError):
            RoundRobinScheduler().schedule([u], [])

    def test_load_balancing_spreads_by_capacity(self):
        clock, events, region, db = sim()
        small = Pilot(PilotDescription("small", "c3.2xlarge", 1), db)
        big = Pilot(PilotDescription("big", "c3.2xlarge", 3), db)
        units = [
            ComputeUnit(unit_desc(name=f"u{i}", cores=8), db) for i in range(4)
        ]
        out = LoadBalancingScheduler().schedule(units, [small, big])
        counts = {}
        for pid in out.values():
            counts[pid] = counts.get(pid, 0) + 1
        assert counts[big.pilot_id] == 3
        assert counts[small.pilot_id] == 1


class TestUnitExecution:
    def run_units(self, descs, pilot_desc=None, scheduler=None):
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        pilot = pm.launch(
            pm.submit(pilot_desc or PilotDescription("P", "c3.2xlarge", 2))
        )
        um = UnitManager(db, events, scheduler=scheduler or RoundRobinScheduler())
        um.add_pilot(pilot)
        units = um.submit_units(descs)
        um.run(units)
        return clock, units, um, pilot

    def test_success_path(self):
        clock, units, _, _ = self.run_units([unit_desc(name="ok")])
        (u,) = units
        assert u.state is UnitState.DONE
        assert u.result == "result"
        assert u.ttc > 0
        assert u.usage is not None

    def test_concurrent_units_share_slots(self):
        descs = [unit_desc(name=f"u{i}", cores=8) for i in range(4)]
        clock, units, _, _ = self.run_units(descs)
        starts = sorted(u.started_at for u in units)
        # 2 nodes x 8 slots: two waves of two
        assert starts[0] == starts[1]
        assert starts[2] == starts[3]
        assert starts[2] > starts[0]

    def test_oom_fails_unit(self):
        # 1 GiB per rank at sim scale, scale=0.01 -> 100 GiB per rank.
        # With no restart budget the run surfaces the failure loudly
        # instead of returning normally with a FAILED unit.
        descs = [unit_desc(name="big", mem=10**9, scale=0.01)]
        with pytest.raises(UnitFailureError) as exc_info:
            self.run_units(descs)
        (u,) = exc_info.value.units
        assert u.state is UnitState.FAILED
        assert "OOM" in u.error
        assert "big" in str(exc_info.value)

    def test_static_oom_fails_before_execution(self):
        """Submitting directly to an agent (bypassing the scheduler's fit
        check) trips the agent's own static capacity guard."""
        from repro.pilot.agent import PilotAgent

        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        pilot = pm.launch(pm.submit(PilotDescription("P", "c3.2xlarge", 2)))
        agent = PilotAgent(pilot)
        unit = ComputeUnit(unit_desc(name="huge", mem_paper=400 * GiB), db)
        unit.advance(UnitState.UNSCHEDULED)
        unit.advance(UnitState.SCHEDULING)
        agent.submit(unit)
        assert unit.state is UnitState.FAILED
        assert "static" in unit.error

    def test_workload_exception_fails_unit(self):
        def boom():
            raise RuntimeError("kaput")

        desc = UnitDescription(name="bad", work=boom, cores=1)
        with pytest.raises(UnitFailureError) as exc_info:
            self.run_units([desc])
        (u,) = exc_info.value.units
        assert u.state is UnitState.FAILED
        assert "kaput" in u.error

    def test_restart_succeeds_on_bigger_pilot(self):
        """OOM on c3 -> restart -> memory-aware scheduler picks r3."""
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        small = pm.launch(pm.submit(PilotDescription("small", "c3.2xlarge", 1)))
        big = pm.launch(pm.submit(PilotDescription("big", "r3.2xlarge", 1)))
        um = UnitManager(db, events, scheduler=MemoryAwareScheduler())
        um.add_pilot(small)
        um.add_pilot(big)
        # declared 40 GiB (paper scale): memory-aware goes straight to r3
        desc = UnitDescription(
            name="preproc", work=make_work(mem=4 * 10**8, ranks=1),
            cores=8, scale=0.01, memory_bytes=40 * GiB, max_restarts=1,
        )
        units = um.submit_units([desc])
        um.run(units)
        (u,) = units
        assert u.state is UnitState.DONE
        assert u.pilot_id == big.pilot_id

    def test_restart_counter(self):
        """Each restart lands on an untried pilot and bumps the counter;
        once every pilot has been tried the run fails with a
        SchedulingError instead of looping on a pilot it already
        failed on."""
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        p1 = pm.launch(pm.submit(PilotDescription("P1", "c3.2xlarge", 1)))
        p2 = pm.launch(pm.submit(PilotDescription("P2", "c3.2xlarge", 1)))
        um = UnitManager(db, events)
        um.add_pilot(p1)
        um.add_pilot(p2)
        desc = UnitDescription(
            name="oom", work=make_work(mem=10**9), cores=8, scale=0.01,
            max_restarts=5,
        )
        units = um.submit_units([desc])
        with pytest.raises(SchedulingError):
            um.run(units)
        (u,) = units
        # OOMed on both pilots, restarted after each: two attempts.
        assert u.restarts == 2
        assert u.state is UnitState.FAILED
        assert "untried" in u.error

    def test_no_pilots_rejected(self):
        clock, events, region, db = sim()
        um = UnitManager(db, events)
        units = um.submit_units([unit_desc()])
        with pytest.raises(ManagerError):
            um.run(units)

    def test_unit_timeline_in_db(self):
        clock, units, um, _ = self.run_units([unit_desc(name="tl")])
        (u,) = units
        states = [r.value for r in u.db.history_of(u.unit_id, "state")]
        assert states == [
            "NEW", "UNSCHEDULED", "SCHEDULING", "PENDING_EXECUTION",
            "EXECUTING", "DONE",
        ]
