"""Regression tests for the restart-exhaustion bugfix sweep.

The original ``UnitManager.run`` dropped units that exhausted their
``max_restarts`` budget and returned normally — success-shaped results
with FAILED units silently left behind.  These tests pin the new
contract: permanent failures raise :class:`UnitFailureError` (with
telemetry), transient (preemption) failures earn no pilot exclusion and
may retry in place, and the livelock guard is a configurable knob that
only counts rounds without progress.
"""

import pytest

from repro.cloud.clock import EventQueue, SimClock
from repro.cloud.ec2 import EC2Region
from repro.cloud.spot import SpotPreemptor
from repro.obs import Tracer, use_tracer
from repro.parallel.usage import PhaseUsage, ResourceUsage
from repro.pilot.db import StateStore
from repro.pilot.description import PilotDescription, UnitDescription
from repro.pilot.elastic import ElasticPool
from repro.pilot.manager import (
    ManagerError,
    PilotManager,
    UnitFailureError,
    UnitManager,
)
from repro.pilot.states import UnitState
from repro.pilot.unit import ComputeUnit


def sim():
    clock = SimClock()
    events = EventQueue(clock)
    region = EC2Region(clock)
    db = StateStore(clock)
    return clock, events, region, db


def make_work(compute=1e6, mem=10**7, ranks=8):
    def work():
        u = ResourceUsage(n_ranks=ranks)
        u.add_phase(
            PhaseUsage("w", "generic", critical_compute=compute,
                       total_compute=compute * ranks)
        )
        u.peak_rank_memory_bytes = mem
        return "result", u

    return work


def oom_desc(name="oom", max_restarts=0, **kw):
    return UnitDescription(
        name=name, work=make_work(mem=10**9), cores=8, scale=0.01,
        max_restarts=max_restarts, **kw,
    )


class TestExhaustionRaises:
    def test_zero_budget_raises_immediately(self):
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        um = UnitManager(db, events)
        um.add_pilot(pm.launch(pm.submit(PilotDescription("P", "c3.2xlarge", 1))))
        units = um.submit_units([oom_desc(max_restarts=0)])
        with pytest.raises(UnitFailureError) as exc_info:
            um.run(units)
        (u,) = exc_info.value.units
        assert u is units[0]
        assert u.restarts == 0
        assert u.state is UnitState.FAILED
        assert "oom" in str(exc_info.value)
        assert "OOM" in str(exc_info.value)  # the unit's error is listed

    def test_budget_of_one_tries_both_pilots_then_raises(self):
        """failed_on exclusions steer the single restart to the untried
        pilot; exhausting the budget there raises."""
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        p1 = pm.launch(pm.submit(PilotDescription("P1", "c3.2xlarge", 1)))
        p2 = pm.launch(pm.submit(PilotDescription("P2", "c3.2xlarge", 1)))
        um = UnitManager(db, events)
        um.add_pilot(p1)
        um.add_pilot(p2)
        units = um.submit_units([oom_desc(max_restarts=1)])
        with pytest.raises(UnitFailureError):
            um.run(units)
        (u,) = units
        assert u.restarts == 1
        tried = {r.value for r in db.history_of(u.unit_id, "pilot")}
        assert tried == {p1.pilot_id, p2.pilot_id}

    def test_exhaustion_emits_telemetry(self):
        clock, events, region, db = sim()
        tracer = Tracer(clock)
        with use_tracer(tracer):
            pm = PilotManager(region, events, db)
            um = UnitManager(db, events)
            um.add_pilot(
                pm.launch(pm.submit(PilotDescription("P", "c3.2xlarge", 1)))
            )
            units = um.submit_units([oom_desc(max_restarts=0)])
            with pytest.raises(UnitFailureError):
                um.run(units)
        assert tracer.metrics.counters["units_failed_permanently"].value == 1
        names = [r["name"] for r in tracer.records()]
        assert "unit.failed_permanently" in names

    def test_survivors_complete_before_the_raise(self):
        """A mixed round still finishes the healthy units: the raise
        reports the failures without discarding completed work."""
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        um = UnitManager(db, events)
        um.add_pilot(
            pm.launch(pm.submit(PilotDescription("P", "r3.2xlarge", 2)))
        )
        units = um.submit_units(
            [
                UnitDescription(
                    name="ok", work=make_work(mem=10**7), cores=8, scale=0.01
                ),
                oom_desc(name="dead"),
            ]
        )
        with pytest.raises(UnitFailureError) as exc_info:
            um.run(units)
        ok, dead = units
        assert ok.state is UnitState.DONE
        assert ok.result == "result"
        assert exc_info.value.units == [dead]


class TestTransientRestart:
    def run_with_preemption(self, max_restarts):
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        pilot = pm.launch(pm.submit(PilotDescription("P", "c3.2xlarge", 2)))
        preemptor = SpotPreemptor(
            region, events, cluster=pilot.cluster,
            protect={pilot.cluster.head.vm_id},
        )
        um = UnitManager(db, events)
        um.add_pilot(pilot)
        # Spans both nodes, so losing the worker kills it mid-run.
        desc = UnitDescription(
            name="wide", work=make_work(ranks=16, mem=10**6), cores=16,
            scale=0.01, max_restarts=max_restarts,
        )
        units = um.submit_units([desc])
        preemptor.arm_in([1.0])
        return um, units, db, preemptor

    def test_preempted_unit_retries_on_same_pilot(self):
        """Transient failures earn no failed_on exclusion: the retry may
        legally land on the pilot whose node was reclaimed, and completes
        on the surviving capacity."""
        um, units, db, preemptor = self.run_with_preemption(max_restarts=1)
        um.run(units)
        (u,) = units
        assert len(preemptor.preempted) == 1
        assert u.state is UnitState.DONE
        assert u.restarts == 1
        pilots = [r.value for r in db.history_of(u.unit_id, "pilot")]
        assert len(pilots) == 2
        assert len(set(pilots)) == 1  # same pilot both attempts

    def test_preempted_unit_without_budget_raises(self):
        um, units, db, preemptor = self.run_with_preemption(max_restarts=0)
        with pytest.raises(UnitFailureError):
            um.run(units)
        (u,) = units
        assert u.failure_transient
        assert "preempted" in u.error

    def test_preemption_telemetry(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with use_tracer(tracer):
            um, units, db, preemptor = self.run_with_preemption(max_restarts=1)
            um.run(units)
        assert tracer.metrics.counters["units_preempted"].value == 1
        assert tracer.metrics.counters["units_restarted"].value == 1
        assert tracer.metrics.counters["vms_preempted"].value == 1


class TestNoProgressRounds:
    def livelocked_manager(self, max_restart_rounds, monkeypatch):
        """Force every failure to be transient so no exclusion is ever
        learned and no round makes progress."""
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        um = UnitManager(db, events, max_restart_rounds=max_restart_rounds)
        um.add_pilot(
            pm.launch(pm.submit(PilotDescription("P", "c3.2xlarge", 1)))
        )

        def boom():
            raise RuntimeError("flaky")

        orig = ComputeUnit.fail
        monkeypatch.setattr(
            ComputeUnit,
            "fail",
            lambda self, error, transient=False: orig(
                self, error, transient=True
            ),
        )
        units = um.submit_units(
            [UnitDescription(name="flaky", work=boom, cores=1,
                             max_restarts=10_000)]
        )
        return um, units

    def test_loop_gives_up_after_configured_rounds(self, monkeypatch):
        um, units = self.livelocked_manager(3, monkeypatch)
        with pytest.raises(ManagerError, match="did not converge"):
            um.run(units)
        assert units[0].restarts == 3

    def test_knob_is_respected(self, monkeypatch):
        um, units = self.livelocked_manager(1, monkeypatch)
        with pytest.raises(ManagerError, match="did not converge"):
            um.run(units)
        assert units[0].restarts == 1


class TestElasticPool:
    def pool(self, n_nodes=2, max_nodes=4):
        clock, events, region, db = sim()
        pm = PilotManager(region, events, db)
        pilot = pm.launch(
            pm.submit(PilotDescription("P", "c3.2xlarge", n_nodes))
        )
        pool = ElasticPool(
            region, events, cluster=pilot.cluster, pilot=pilot,
            min_nodes=1, max_nodes=max_nodes,
        )
        return clock, events, region, pilot, pool

    def test_grows_to_cover_queue_depth(self):
        from repro.cloud.sge import SGEJob

        clock, events, region, pilot, pool = self.pool(n_nodes=1)
        sched = pilot.cluster.scheduler
        sched.qsub(SGEJob(name="a", slots=8, duration=100.0))
        sched.qsub(SGEJob(name="b", slots=8, duration=100.0))  # queued
        assert pool.rebalance() == 1
        assert pool.inflight == 1
        assert pool.rebalance() == 0  # inflight counted against demand
        events.run()
        assert pool.inflight == 0
        assert pool.grown_total == 1
        assert pilot.cluster.n_nodes == 2
        assert pilot.n_nodes == 2  # pilot resized to track the pool
        assert sched.qstat()["done"] == 2

    def test_growth_capped_at_max_nodes(self):
        from repro.cloud.sge import SGEJob

        clock, events, region, pilot, pool = self.pool(
            n_nodes=1, max_nodes=2
        )
        sched = pilot.cluster.scheduler
        for i in range(6):
            sched.qsub(SGEJob(name=f"j{i}", slots=8, duration=100.0))
        pool.rebalance()
        events.run()
        assert pilot.cluster.n_nodes == 2

    def test_preemption_hook_replaces_lost_node(self):
        from repro.cloud.sge import SGEJob

        clock, events, region, pilot, pool = self.pool(n_nodes=2)
        preemptor = SpotPreemptor(
            region, events, cluster=pilot.cluster,
            protect={pilot.cluster.head.vm_id},
        )
        preemptor.on_preempt.append(pool.on_preempt)
        sched = pilot.cluster.scheduler
        sched.qsub(SGEJob(name="a", slots=8, duration=500.0))
        sched.qsub(SGEJob(name="b", slots=8, duration=500.0))
        sched.qsub(SGEJob(name="c", slots=8, duration=500.0))  # queued
        preemptor.arm_in([10.0])
        events.run()
        # The worker died (taking job b), the pool replaced it, and the
        # queued job c eventually ran on the replacement.
        assert len(preemptor.preempted) == 1
        assert pool.grown_total >= 1
        assert sched.jobs and sched.qstat()["qw"] == 0
        assert sched.qstat()["done"] == 2  # a and c; b died with its node

    def test_shrink_idle_releases_workers(self):
        clock, events, region, pilot, pool = self.pool(n_nodes=3)
        released = pool.shrink_idle()
        assert released == 2
        assert pilot.cluster.n_nodes == 1
        assert pilot.n_nodes == 1
        assert pool.shrunk_total == 2
        # Idempotent at the floor.
        assert pool.shrink_idle() == 0
