"""Exhaustive state-machine coverage and transition-hook semantics.

Complements the hypothesis-sampled tests in test_states_db.py with a
deterministic sweep over *every* (from, to) state pair, exercised
through the live entities (``Pilot.advance`` / ``ComputeUnit.advance``)
rather than the bare check functions — so the hook/tracer seam is
covered too.
"""

import itertools

import pytest

from repro.cloud.clock import SimClock
from repro.pilot.db import StateStore
from repro.pilot.description import PilotDescription, UnitDescription
from repro.pilot.pilot import Pilot
from repro.pilot.states import (
    PILOT_TRANSITIONS,
    UNIT_TRANSITIONS,
    PilotState,
    StateError,
    UnitState,
)
from repro.pilot.unit import ComputeUnit


def make_pilot() -> Pilot:
    return Pilot(PilotDescription("P", "c3.2xlarge", 1), StateStore(SimClock()))


def make_unit() -> ComputeUnit:
    return ComputeUnit(
        UnitDescription(name="u", work=lambda: (None, None)),
        StateStore(SimClock()),
    )


PILOT_PAIRS = list(itertools.product(PilotState, PilotState))
UNIT_PAIRS = list(itertools.product(UnitState, UnitState))


class TestExhaustivePilotPairs:
    @pytest.mark.parametrize(
        "a,b", PILOT_PAIRS, ids=[f"{a.value}->{b.value}" for a, b in PILOT_PAIRS]
    )
    def test_every_pair(self, a, b):
        pilot = make_pilot()
        pilot.state = a
        fired = []
        pilot.transition_hooks.append(lambda p, old, new: fired.append((old, new)))
        if b in PILOT_TRANSITIONS[a]:
            pilot.advance(b)
            assert pilot.state is b
            assert fired == [(a, b)]
        else:
            with pytest.raises(StateError):
                pilot.advance(b)
            # a rejected transition changes nothing and fires nothing
            assert pilot.state is a
            assert fired == []


class TestExhaustiveUnitPairs:
    @pytest.mark.parametrize(
        "a,b", UNIT_PAIRS, ids=[f"{a.value}->{b.value}" for a, b in UNIT_PAIRS]
    )
    def test_every_pair(self, a, b):
        unit = make_unit()
        unit.state = a
        fired = []
        unit.transition_hooks.append(lambda u, old, new: fired.append((old, new)))
        if b in UNIT_TRANSITIONS[a]:
            unit.advance(b)
            assert unit.state is b
            assert fired == [(a, b)]
        else:
            with pytest.raises(StateError):
                unit.advance(b)
            assert unit.state is a
            assert fired == []


class TestHookSemantics:
    def test_pilot_hooks_fire_once_per_transition_over_lifecycle(self):
        pilot = make_pilot()
        fired = []
        pilot.transition_hooks.append(lambda p, old, new: fired.append((old, new)))
        path = [
            PilotState.PENDING_LAUNCH,
            PilotState.LAUNCHING,
            PilotState.ACTIVE,
            PilotState.DONE,
        ]
        for state in path:
            pilot.advance(state)
        assert fired == [
            (PilotState.NEW, PilotState.PENDING_LAUNCH),
            (PilotState.PENDING_LAUNCH, PilotState.LAUNCHING),
            (PilotState.LAUNCHING, PilotState.ACTIVE),
            (PilotState.ACTIVE, PilotState.DONE),
        ]

    def test_unit_hooks_fire_once_per_transition_over_lifecycle(self):
        unit = make_unit()
        fired = []
        unit.transition_hooks.append(lambda u, old, new: fired.append((old, new)))
        path = [
            UnitState.UNSCHEDULED,
            UnitState.SCHEDULING,
            UnitState.PENDING_EXECUTION,
            UnitState.EXECUTING,
            UnitState.DONE,
        ]
        for state in path:
            unit.advance(state)
        assert len(fired) == 5
        assert fired[0] == (UnitState.NEW, UnitState.UNSCHEDULED)
        assert fired[-1] == (UnitState.EXECUTING, UnitState.DONE)

    def test_multiple_hooks_all_fire_in_order(self):
        pilot = make_pilot()
        order = []
        pilot.transition_hooks.append(lambda *a: order.append("first"))
        pilot.transition_hooks.append(lambda *a: order.append("second"))
        pilot.advance(PilotState.PENDING_LAUNCH)
        assert order == ["first", "second"]

    def test_hook_receives_entity(self):
        unit = make_unit()
        seen = []
        unit.transition_hooks.append(lambda u, old, new: seen.append(u))
        unit.advance(UnitState.UNSCHEDULED)
        assert seen == [unit]

    def test_hooks_fire_after_db_update(self):
        # the hook must observe the *published* state, not the stale one
        pilot = make_pilot()
        published = []
        pilot.transition_hooks.append(
            lambda p, old, new: published.append(p.db.get(p.pilot_id, "state"))
        )
        pilot.advance(PilotState.PENDING_LAUNCH)
        assert published == [PilotState.PENDING_LAUNCH.value]
