"""The public API surface: every documented export imports and resolves."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.seq",
    "repro.parallel",
    "repro.cloud",
    "repro.pilot",
    "repro.assembly",
    "repro.core",
    "repro.evaluation",
    "repro.bench",
    "repro.obs",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_imports(name):
    mod = importlib.import_module(name)
    assert mod.__doc__, f"{name} must be documented"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert hasattr(mod, symbol), f"{name}.{symbol} missing"
        obj = getattr(mod, symbol)
        assert obj is not None


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_all_lists_subpackages():
    assert set(repro.__all__) == {s.split(".")[1] for s in SUBPACKAGES}


def test_key_entry_points_importable():
    from repro.core import PipelineConfig, RnnotatorPipeline  # noqa: F401
    from repro.seq import generate_dataset  # noqa: F401
    from repro.evaluation import evaluate  # noqa: F401
    from repro.assembly import get_assembler  # noqa: F401
    from repro.bench import calibrated_cost_model  # noqa: F401


def test_public_classes_have_docstrings():
    from repro.core.rnnotator import PipelineConfig, PipelineResult, RnnotatorPipeline
    from repro.pilot.manager import PilotManager, UnitManager
    from repro.cloud.sge import SGEScheduler
    from repro.parallel.comm import SimWorld

    for cls in (PipelineConfig, PipelineResult, RnnotatorPipeline,
                PilotManager, UnitManager, SGEScheduler, SimWorld):
        assert cls.__doc__ and len(cls.__doc__) > 10
