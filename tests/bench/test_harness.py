"""Tests for the benchmark harness (formatting and light helpers).

The heavy pieces (bench data sets, calibration) are exercised by the
benchmarks themselves; these tests cover the pure functions.
"""

import pytest

from repro.bench.harness import (
    BENCH_PARAMS,
    format_figure,
    format_table,
    machine_for,
)
from repro.parallel.costmodel import CostModel
from repro.parallel.usage import PhaseUsage, ResourceUsage


class TestFormatting:
    def test_table_alignment(self):
        out = format_table("T", ["a", "bb"], [["x", 1], ["yy", 22]])
        lines = out.split("\n")
        assert lines[0] == "== T =="
        assert "a" in lines[1] and "bb" in lines[1]
        assert len({len(l) for l in lines[1:]}) <= 2  # consistent width

    def test_table_empty_rows(self):
        out = format_table("T", ["col"], [])
        assert "col" in out

    def test_figure_grid(self):
        out = format_figure(
            "F", "x", {"s1": [(1, 10.0), (2, 20.0)], "s2": [(2, 5.0)]}
        )
        lines = out.split("\n")
        assert "s1" in lines[1] and "s2" in lines[1]
        # x=1 row has a dash for the missing s2 point
        row1 = [l for l in lines if l.startswith("1")][0]
        assert "-" in row1
        row2 = [l for l in lines if l.startswith("2")][0]
        assert "20" in row2 and "5" in row2


class TestMachineFor:
    def test_instance_attributes_carried(self):
        m = machine_for("c3.2xlarge", 4)
        assert m.n_nodes == 4
        assert m.cores_per_node == 8
        assert m.network_bandwidth > 0

    def test_unknown_instance(self):
        with pytest.raises(KeyError):
            machine_for("z9.mega", 1)


class TestBenchParams:
    def test_datasets_registered(self):
        assert set(BENCH_PARAMS) == {"B_glumae", "P_crispa"}
        for scale, boost in BENCH_PARAMS.values():
            assert 0 < scale < 0.1
            assert 0 < boost <= 1.0


class TestCalibrationMath:
    def test_priced_parts_decomposition(self):
        """fixed + rate-scaled parts must add to the total."""
        from repro.bench.calibration import _priced_parts
        from repro.bench.harness import machine_for

        cm = CostModel()
        u = ResourceUsage(n_ranks=16)
        u.add_phase(
            PhaseUsage("a", "kmer", critical_compute=1e6, comm_bytes=10**8,
                       n_collectives=3, n_jobs=2)
        )
        machine = machine_for("c3.2xlarge", 2)
        compute_s, fixed_s = _priced_parts(cm, u, machine)
        assert compute_s > 0
        assert fixed_s > 0
        assert compute_s + fixed_s == pytest.approx(
            cm.task_seconds(u, machine)
        )

    def test_table3_targets(self):
        from repro.bench.calibration import TABLE3_TARGETS

        assert TABLE3_TARGETS == {
            "ray": 1721.0, "abyss": 882.0, "contrail": 6720.0,
        }
