"""Tests for the run-report CLI and its building blocks."""

import json
from pathlib import Path

from repro.obs import Tracer, write_jsonl
from repro.obs.export import chrome_trace
from repro.obs.report import (
    alerts_section,
    build_report,
    cache_scorecard,
    hottest_phases,
    main,
    process_timelines,
    report_data,
    stage_table,
    stage_ttcs,
    virtual_vs_real,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def advance(self, dt):
        self.now += dt


def make_records() -> list[dict]:
    clock = FakeClock()
    tr = Tracer(clock)
    with tr.span(
        "stage:pre-processing", category="stage", process="pilot.0",
        stage="pre-processing", pilot="pilot.0", n_nodes=1,
        instance_type="c3.2xlarge",
    ):
        clock.advance(123.25)
    with tr.span(
        "stage:transcript-assembly", category="stage", process="pilot.1",
        stage="transcript-assembly", pilot="pilot.1", n_nodes=4,
        instance_type="r3.2xlarge",
    ):
        clock.advance(4000.0)
    tr.event(
        "phase", category="phase", phase="kmer-count", kind="kmer",
        critical_compute=5000.0, comm_bytes=123456,
    )
    tr.event(
        "phase", category="phase", phase="walk", kind="graph",
        critical_compute=100.0, comm_bytes=0,
    )
    tr.count("units_done", 5)
    return tr.records()


class TestSections:
    def test_stage_ttcs_exact(self):
        ttcs = stage_ttcs(make_records())
        assert ttcs == {
            "pre-processing": 123.25,
            "transcript-assembly": 4000.0,
        }

    def test_stage_table(self):
        table = stage_table(make_records())
        assert "pre-processing" in table
        assert "4 x r3.2xlarge" in table

    def test_process_timelines(self):
        text = process_timelines(make_records())
        assert "pilot.0" in text and "pilot.1" in text
        assert "#" in text

    def test_virtual_vs_real(self):
        text = virtual_vs_real(make_records())
        assert "stage" in text

    def test_hottest_phases_ordered_by_critical_compute(self):
        text = hottest_phases(make_records(), top=10)
        assert text.index("kmer-count") < text.index("walk")

    def test_hottest_phases_respects_top(self):
        text = hottest_phases(make_records(), top=1)
        assert "kmer-count" in text and "walk" not in text

    def test_build_report_composes_sections(self):
        report = build_report(make_records())
        for needle in (
            "per-stage timings", "virtual timelines",
            "virtual vs real", "hottest phases", "trace:",
        ):
            assert needle in report

    def test_empty_records(self):
        assert stage_ttcs([]) == {}
        assert stage_table([]) == ""
        assert process_timelines([]) == ""
        assert "0 spans" in build_report([])

    def test_cache_scorecard_mirrors_counters(self):
        records = [
            {
                "type": "metrics",
                "data": {
                    "counters": {
                        "kmer_table.hit": 6,
                        "kmer_table.miss": 2,
                        "kmer_table.bytes": 1_234_567,
                        "assembly_cache.hit": 3,
                        "assembly_cache.miss": 5,
                        "assembly_cache.put": 5,
                    }
                },
            }
        ]
        text = cache_scorecard(records)
        assert "kmer table cache" in text
        assert "hits 6" in text and "misses 2" in text
        assert "hit rate 75%" in text
        assert "bytes cached 1.23457e+06" in text
        assert "assembly cache" in text and "puts 5" in text
        assert "cache scorecard" in build_report(records)

    def test_cache_scorecard_empty_without_counters(self):
        assert cache_scorecard([]) == ""
        assert (
            cache_scorecard([{"type": "metrics", "data": {"counters": {}}}])
            == ""
        )

    def test_cache_scorecard_spectrum_build_row(self):
        records = [
            {
                "type": "span", "name": "spectrum.build", "cat": "spectrum",
                "process": "p", "thread": "t", "v0": 10.0, "v1": 10.0,
                "r0": 2.0, "r1": 2.5, "id": 1, "parent": None,
                "attrs": {"mode": "sharded", "n_shards": 3},
            }
        ]
        text = cache_scorecard(records)
        assert "spectrum build" in text
        assert "wall 0.500 s" in text
        assert "virtual 0 s" in text
        assert "mode sharded" in text and "shards 3" in text


def golden_records() -> list[dict]:
    """A fully hand-constructed trace: every timestamp (virtual *and*
    real) is a fixed literal, so the rendered report is byte-stable."""
    return [
        {
            "type": "span", "name": "stage:pre-processing", "cat": "stage",
            "process": "pilot.0", "thread": "main", "v0": 0.0, "v1": 123.25,
            "r0": 1.0, "r1": 1.5, "id": 1, "parent": None,
            "attrs": {"stage": "pre-processing", "pilot": "pilot.0",
                      "n_nodes": 1, "instance_type": "c3.2xlarge"},
        },
        {
            "type": "span", "name": "stage:transcript-assembly",
            "cat": "stage", "process": "pilot.1", "thread": "main",
            "v0": 123.25, "v1": 4123.25, "r0": 1.5, "r1": 3.25, "id": 2,
            "parent": None,
            "attrs": {"stage": "transcript-assembly", "pilot": "pilot.1",
                      "n_nodes": 4, "instance_type": "r3.2xlarge"},
        },
        {
            # A merged worker-side span: real clock only, per-pid track.
            "type": "span", "name": "workload", "cat": "worker",
            "process": "worker-4242", "thread": "u1", "v0": None,
            "v1": None, "r0": 1.6, "r1": 2.6, "id": 3, "parent": 2,
            "attrs": {"rss_bytes": 64000000, "cpu_seconds": 1.5},
        },
        {
            # The host-side spectrum build: real wall time, zero virtual
            # width (the scorecard's spectrum-build row feeds off this).
            "type": "span", "name": "spectrum.build", "cat": "spectrum",
            "process": "pilot.0", "thread": "main", "v0": 123.25,
            "v1": 123.25, "r0": 1.5, "r1": 1.75, "id": 4, "parent": None,
            "attrs": {"mode": "sharded", "ks": [25, 31], "n_shards": 2,
                      "n_buckets": 16},
        },
        {
            "type": "event", "name": "resource.sample", "cat": "resource",
            "process": "worker-4242", "thread": "u1", "v": None, "r": 1.7,
            "attrs": {"rss_bytes": 64000000, "cpu_seconds": 0.75},
        },
        {
            "type": "event", "name": "phase", "cat": "phase",
            "process": "pilot.1", "thread": "u1", "v": 200.0, "r": 1.8,
            "attrs": {"phase": "kmer-count", "kind": "kmer",
                      "critical_compute": 5000.0, "comm_bytes": 123456},
        },
        {
            # A live heartbeat: ignored by every report section except
            # the monitor's in-flight view.
            "type": "event", "name": "unit.heartbeat", "cat": "heartbeat",
            "process": "pilot.1", "thread": "u1", "v": 200.0, "r": 1.9,
            "attrs": {"unit": "ray_k41", "stage": "transcript-assembly",
                      "elapsed_r": 0.4, "inflight": 1},
        },
        {
            # A rules-engine firing: feeds the report's alert log.
            "type": "event", "name": "alert", "cat": "alert",
            "process": "main", "thread": "main", "v": 4123.25, "r": 3.0,
            "attrs": {"rule": "stage_duration", "severity": "critical",
                      "message": "stage transcript-assembly took 4000.0 "
                      "virtual s (SLO 3600 s)",
                      "stage": "transcript-assembly", "ttc_s": 4000.0,
                      "slo_s": 3600.0},
        },
        {
            "type": "metrics",
            "data": {
                "counters": {"units_done": 5, "worker_records_merged": 2},
                "gauges": {"vms_running": 4},
                "histograms": {
                    "workload_wall_seconds": {
                        "count": 2, "sum": 3.0, "mean": 1.5, "min": 1.0,
                        "max": 2.0, "p50": 1.0, "p95": 2.0,
                    }
                },
            },
        },
    ]


GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_report.txt"


class TestGoldenReport:
    def test_report_matches_golden(self):
        # Regenerate with:
        #   PYTHONPATH=src:tests python -c "from obs.test_report import *; \
        #       GOLDEN_PATH.write_text(build_report(golden_records()) + '\n')"
        assert build_report(golden_records()) + "\n" == GOLDEN_PATH.read_text()

    def test_golden_mentions_worker_artifacts(self):
        text = GOLDEN_PATH.read_text()
        assert "worker-4242" in text
        assert "worker_records_merged" in text

    def test_golden_mentions_alerts(self):
        text = GOLDEN_PATH.read_text()
        assert "alerts (1):" in text
        assert "[critical] stage_duration" in text


class TestAlertsSection:
    def test_renders_one_line_per_firing(self):
        text = alerts_section(golden_records())
        assert text.startswith("alerts (1):")
        assert "stage transcript-assembly took 4000.0" in text

    def test_empty_without_alert_events(self):
        assert alerts_section(make_records()) == ""


class TestJsonReport:
    def test_report_data_round_trips_through_json(self):
        data = report_data(golden_records())
        assert json.loads(json.dumps(data)) == data

    def test_report_data_contents(self):
        data = report_data(golden_records())
        assert data["stages"]["pre-processing"]["virtual_s"] == 123.25
        assert data["stages"]["transcript-assembly"]["virtual_s"] == 4000.0
        assert data["counters"]["units_done"] == 5
        assert len(data["alerts"]) == 1
        assert data["alerts"][0]["rule"] == "stage_duration"
        assert data["hottest_phases"][0]["phase"] == "kmer-count"
        # worker span is nested (parent set): excluded from category totals
        assert "worker" not in data["categories"]

    def test_cli_json_round_trip(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(json.dumps(r) for r in golden_records()) + "\n"
        )
        assert main([str(path), "--json"]) == 0
        out = capsys.readouterr().out
        assert json.loads(out) == report_data(golden_records())


class TestChromeWorkerTracks:
    def test_real_clock_roundtrip_keeps_worker_tracks(self, tmp_path):
        doc = chrome_trace(golden_records(), clock="real")
        clone = json.loads(json.dumps(doc))  # must survive JSON round-trip
        events = clone["traceEvents"]
        names = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert "worker-4242" in names and "pilot.0" in names
        worker_pid = next(
            e["pid"] for e in events
            if e["name"] == "process_name"
            and e["args"]["name"] == "worker-4242"
        )
        workload = next(e for e in events if e["name"] == "workload")
        assert workload["pid"] == worker_pid
        assert workload["ph"] == "X"
        assert workload["ts"] == 1.6e6 and workload["dur"] == 1.0e6

    def test_resource_samples_become_counter_tracks(self):
        events = chrome_trace(golden_records(), clock="real")["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        by_name = {e["name"]: e for e in counters}
        # endpoint attrs on the span do not create counters; the sample does
        assert by_name["rss_mb"]["args"]["value"] == 64.0
        assert by_name["cpu_s"]["args"]["value"] == 0.75
        assert all(e["cat"] == "resource" for e in counters)

    def test_virtual_clock_drops_worker_records(self):
        events = chrome_trace(golden_records(), clock="virtual")["traceEvents"]
        assert not any(e["name"] == "workload" for e in events)
        assert not any(e["ph"] == "C" for e in events)
        # ...and the worker track is never even registered
        names = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert "worker-4242" not in names


class TestCli:
    def test_main_renders_report(self, tmp_path, capsys):
        clock = FakeClock()
        tr = Tracer(clock)
        with tr.span("stage:pre", category="stage", stage="pre"):
            clock.advance(10.0)
        trace = write_jsonl(tr, tmp_path / "trace.jsonl")
        assert main([str(trace)]) == 0
        out = capsys.readouterr().out
        assert "per-stage timings" in out

    def test_main_chrome_export(self, tmp_path, capsys):
        clock = FakeClock()
        tr = Tracer(clock)
        with tr.span("stage:pre", category="stage", stage="pre"):
            clock.advance(10.0)
        trace = write_jsonl(tr, tmp_path / "trace.jsonl")
        out_path = tmp_path / "chrome.json"
        assert main([str(trace), "--chrome", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert "Perfetto" in capsys.readouterr().out

    def test_module_is_runnable(self):
        # python -m repro.obs.report exercises this import path
        import repro.obs.report as mod

        assert callable(mod.main)
