"""Tests for the run-report CLI and its building blocks."""

import json

from repro.obs import Tracer, write_jsonl
from repro.obs.report import (
    build_report,
    hottest_phases,
    main,
    process_timelines,
    stage_table,
    stage_ttcs,
    virtual_vs_real,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def advance(self, dt):
        self.now += dt


def make_records() -> list[dict]:
    clock = FakeClock()
    tr = Tracer(clock)
    with tr.span(
        "stage:pre-processing", category="stage", process="pilot.0",
        stage="pre-processing", pilot="pilot.0", n_nodes=1,
        instance_type="c3.2xlarge",
    ):
        clock.advance(123.25)
    with tr.span(
        "stage:transcript-assembly", category="stage", process="pilot.1",
        stage="transcript-assembly", pilot="pilot.1", n_nodes=4,
        instance_type="r3.2xlarge",
    ):
        clock.advance(4000.0)
    tr.event(
        "phase", category="phase", phase="kmer-count", kind="kmer",
        critical_compute=5000.0, comm_bytes=123456,
    )
    tr.event(
        "phase", category="phase", phase="walk", kind="graph",
        critical_compute=100.0, comm_bytes=0,
    )
    tr.count("units_done", 5)
    return tr.records()


class TestSections:
    def test_stage_ttcs_exact(self):
        ttcs = stage_ttcs(make_records())
        assert ttcs == {
            "pre-processing": 123.25,
            "transcript-assembly": 4000.0,
        }

    def test_stage_table(self):
        table = stage_table(make_records())
        assert "pre-processing" in table
        assert "4 x r3.2xlarge" in table

    def test_process_timelines(self):
        text = process_timelines(make_records())
        assert "pilot.0" in text and "pilot.1" in text
        assert "#" in text

    def test_virtual_vs_real(self):
        text = virtual_vs_real(make_records())
        assert "stage" in text

    def test_hottest_phases_ordered_by_critical_compute(self):
        text = hottest_phases(make_records(), top=10)
        assert text.index("kmer-count") < text.index("walk")

    def test_hottest_phases_respects_top(self):
        text = hottest_phases(make_records(), top=1)
        assert "kmer-count" in text and "walk" not in text

    def test_build_report_composes_sections(self):
        report = build_report(make_records())
        for needle in (
            "per-stage timings", "virtual timelines",
            "virtual vs real", "hottest phases", "trace:",
        ):
            assert needle in report

    def test_empty_records(self):
        assert stage_ttcs([]) == {}
        assert stage_table([]) == ""
        assert process_timelines([]) == ""
        assert "0 spans" in build_report([])


class TestCli:
    def test_main_renders_report(self, tmp_path, capsys):
        clock = FakeClock()
        tr = Tracer(clock)
        with tr.span("stage:pre", category="stage", stage="pre"):
            clock.advance(10.0)
        trace = write_jsonl(tr, tmp_path / "trace.jsonl")
        assert main([str(trace)]) == 0
        out = capsys.readouterr().out
        assert "per-stage timings" in out

    def test_main_chrome_export(self, tmp_path, capsys):
        clock = FakeClock()
        tr = Tracer(clock)
        with tr.span("stage:pre", category="stage", stage="pre"):
            clock.advance(10.0)
        trace = write_jsonl(tr, tmp_path / "trace.jsonl")
        out_path = tmp_path / "chrome.json"
        assert main([str(trace), "--chrome", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert "Perfetto" in capsys.readouterr().out

    def test_module_is_runnable(self):
        # python -m repro.obs.report exercises this import path
        import repro.obs.report as mod

        assert callable(mod.main)
