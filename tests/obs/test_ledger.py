"""Tests for the append-only run ledger and its regression gate."""

import json

import pytest

from repro.obs.ledger import (
    RunLedger,
    build_record,
    check_regressions,
    main,
)
from tests.obs.test_attribution import make_run_trace, write_trace


class TestBuildRecord:
    def test_distills_the_fixture_trace(self):
        rec = build_record(make_run_trace(), run_id="r1")
        assert rec["run_id"] == "r1"
        assert rec["dataset"] == "toy"
        assert rec["config_fingerprint"] == "cafe0123"
        assert rec["store_digest"] == "feed4567"
        assert rec["ttc_s"] == 100.0
        assert rec["stages"]["transcript-assembly"]["virtual_s"] == 70.0
        assert rec["cost"]["total_usd"] == pytest.approx(0.84)
        assert rec["cost"]["n_vms"] == 2

    def test_critical_path_summary_matches_ttc(self):
        rec = build_record(make_run_trace())
        assert rec["critical_path"]["total_virtual_s"] == rec["ttc_s"]

    def test_planner_block_present_when_predicted(self):
        rec = build_record(make_run_trace())
        assert rec["planner"]["ttc_s"]["predicted"] == 95.0
        assert rec["planner"]["ttc_s"]["actual"] == 100.0

    def test_no_pipeline_span_raises(self):
        with pytest.raises(ValueError):
            build_record([])

    def test_record_is_deterministic(self):
        assert build_record(make_run_trace()) == build_record(
            make_run_trace()
        )


class TestRunLedger:
    def test_append_read_roundtrip(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "runs.jsonl"))
        ledger.append({"a": 1})
        ledger.append({"b": 2})
        result = ledger.read()
        assert result.records == [{"a": 1}, {"b": 2}]
        assert result.skipped == 0

    def test_missing_file_reads_empty(self, tmp_path):
        result = RunLedger(str(tmp_path / "absent.jsonl")).read()
        assert result.records == [] and result.skipped == 0

    def test_torn_last_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(str(path))
        ledger.append({"ok": 1})
        # simulate a writer that died mid-append
        with open(path, "a") as fh:
            fh.write('{"torn": tru')
        result = ledger.read()
        assert result.records == [{"ok": 1}]
        assert result.skipped == 1

    def test_mid_file_corruption_keeps_later_records(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('{"a": 1}\ngarbage\n[1, 2]\n{"b": 2}\n')
        result = RunLedger(str(path)).read()
        assert result.records == [{"a": 1}, {"b": 2}]
        assert result.skipped == 2  # garbage + the non-dict line

    def test_creates_parent_directory(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "deep" / "runs.jsonl"))
        ledger.append({"a": 1})
        assert ledger.read().records == [{"a": 1}]


def ledger_rec(ttc=100.0, cost=0.84, fingerprint="cafe0123", **stages):
    return {
        "schema": 1,
        "dataset": "toy",
        "config_fingerprint": fingerprint,
        "ttc_s": ttc,
        "cost": {"total_usd": cost},
        "stages": {
            name: {"virtual_s": v} for name, v in stages.items()
        },
        "counters": {},
    }


class TestCheckRegressions:
    def test_empty_ledger_raises(self):
        with pytest.raises(ValueError):
            check_regressions([])

    def test_first_run_has_no_baseline(self):
        regressions, note = check_regressions([ledger_rec()])
        assert regressions == []
        assert "no comparable baseline" in note

    def test_within_tolerance_passes(self):
        records = [ledger_rec(100.0)] * 3 + [ledger_rec(104.0)]
        regressions, note = check_regressions(records, v_rel=0.05)
        assert regressions == []
        assert "3 comparable" in note

    def test_slowdown_beyond_tolerance_fails(self):
        records = [ledger_rec(100.0)] * 3 + [ledger_rec(110.0)]
        regressions, _ = check_regressions(records, v_rel=0.05)
        assert [r.quantity for r in regressions] == ["ttc_s"]
        assert regressions[0].rel_err == pytest.approx(0.10)

    def test_speedup_is_not_a_regression(self):
        records = [ledger_rec(100.0)] * 3 + [ledger_rec(50.0)]
        assert check_regressions(records, v_rel=0.05)[0] == []

    def test_median_baseline_shrugs_off_one_outlier(self):
        records = [
            ledger_rec(100.0), ledger_rec(500.0), ledger_rec(100.0),
            ledger_rec(104.0),
        ]
        assert check_regressions(records, v_rel=0.05)[0] == []

    def test_cost_gate(self):
        records = [ledger_rec(cost=1.0)] * 2 + [ledger_rec(cost=2.0)]
        regressions, _ = check_regressions(records, cost_rel=0.25)
        assert [r.quantity for r in regressions] == ["cost.total_usd"]

    def test_per_stage_gate(self):
        records = [ledger_rec(assembly=50.0)] * 2 + [
            ledger_rec(assembly=60.0)
        ]
        regressions, _ = check_regressions(records, v_rel=0.05)
        assert [r.quantity for r in regressions] == [
            "stages.assembly.virtual_s"
        ]

    def test_different_fingerprint_is_not_comparable(self):
        records = [ledger_rec(50.0, fingerprint="other")] * 3 + [
            ledger_rec(100.0)
        ]
        regressions, note = check_regressions(records, v_rel=0.05)
        assert regressions == []
        assert "no comparable baseline" in note

    def test_window_limits_the_baseline(self):
        # Old slow history beyond the window must not mask a regression
        # against the recent, faster, baseline.
        records = (
            [ledger_rec(200.0)] * 5
            + [ledger_rec(100.0)] * 5
            + [ledger_rec(110.0)]
        )
        regressions, _ = check_regressions(records, window=5, v_rel=0.05)
        assert [r.quantity for r in regressions] == ["ttc_s"]


class TestCli:
    def test_append_list_show_compare_check(self, tmp_path, capsys):
        trace = write_trace(tmp_path, make_run_trace())
        ledger = str(tmp_path / "runs.jsonl")
        assert main(["append", trace, "--ledger", ledger, "--run-id", "a"]) == 0
        assert main(["append", trace, "--ledger", ledger, "--run-id", "b"]) == 0
        capsys.readouterr()

        assert main(["list", "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "run_id=a" in out and "run_id=b" in out

        assert main(["show", "--ledger", ledger, "--index", "-1"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["run_id"] == "b"

        assert main(["compare", "--ledger", ledger]) == 0
        assert "ttc_s" in capsys.readouterr().out

        # identical runs: gated and clean
        assert main(["check", "--ledger", ledger]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_check_exits_one_on_regression(self, tmp_path, capsys):
        ledger = str(tmp_path / "runs.jsonl")
        lg = RunLedger(ledger)
        lg.append(ledger_rec(100.0))
        lg.append(ledger_rec(100.0))
        lg.append(ledger_rec(150.0))
        assert main(["check", "--ledger", ledger, "--v-rel", "0.05"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_check_json(self, tmp_path, capsys):
        ledger = str(tmp_path / "runs.jsonl")
        lg = RunLedger(ledger)
        lg.append(ledger_rec(100.0))
        lg.append(ledger_rec(150.0))
        assert main(["check", "--ledger", ledger, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"][0]["quantity"] == "ttc_s"

    def test_check_empty_ledger_exits_two(self, tmp_path, capsys):
        assert main(["check", "--ledger", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_append_bad_trace_exits_two(self, tmp_path, capsys):
        trace = write_trace(tmp_path, [])
        code = main(
            ["append", str(trace), "--ledger", str(tmp_path / "l.jsonl")]
        )
        assert code == 2
        assert "pipeline span" in capsys.readouterr().err

    def test_list_notes_skipped_lines(self, tmp_path, capsys):
        path = tmp_path / "runs.jsonl"
        RunLedger(str(path)).append(ledger_rec())
        with open(path, "a") as fh:
            fh.write('{"torn')
        assert main(["list", "--ledger", str(path)]) == 0
        captured = capsys.readouterr()
        assert "skipped 1" in captured.err

    def test_module_is_runnable(self):
        import repro.obs.ledger as mod

        assert callable(mod.main)
