"""Tests for the trace-diff CLI and its building blocks."""

from repro.obs import Tracer, write_jsonl
from repro.obs.diff import diff_traces, main


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def advance(self, dt):
        self.now += dt


def make_trace(assembly_ttc=4000.0, extra_span=False, units_done=5):
    clock = FakeClock()
    tr = Tracer(clock)
    with tr.span("stage:pre-processing", category="stage",
                 stage="pre-processing"):
        clock.advance(100.0)
    with tr.span("stage:transcript-assembly", category="stage",
                 stage="transcript-assembly"):
        clock.advance(assembly_ttc)
    if extra_span:
        with tr.span("stage:mystery", category="stage", stage="mystery"):
            clock.advance(1.0)
    tr.count("units_done", units_done)
    tr.gauge("vms_running", 4)
    tr.observe("workload_wall_seconds", 0.5)
    return tr


def records_of(tracer):
    return tracer.records() + [
        {"type": "metrics", "data": tracer.metrics.snapshot()}
    ]


class TestDiffTraces:
    def test_identical_traces_have_zero_drift(self):
        a = records_of(make_trace())
        diff = diff_traces(a, list(a))
        assert diff.total_v_rel == 0.0
        assert diff.max_stage_v_rel == 0.0
        assert diff.new_names == [] and diff.missing_names == []
        assert diff.metric_deltas == []
        assert diff.violations() == []

    def test_virtual_drift_detected_and_gated(self):
        a = records_of(make_trace(assembly_ttc=4000.0))
        b = records_of(make_trace(assembly_ttc=4400.0))
        diff = diff_traces(a, b)
        stage = next(
            d for d in diff.stages if d.stage == "transcript-assembly"
        )
        assert stage.v_rel > 0.09
        assert diff.violations(v_rel=0.0)
        assert not diff.violations(v_rel=0.2)

    def test_new_and_missing_spans(self):
        a = records_of(make_trace())
        b = records_of(make_trace(extra_span=True))
        diff = diff_traces(a, b)
        assert ("span", "stage", "stage:mystery") in diff.new_names
        assert diff.violations(v_rel=1.0)  # structural change gates
        assert not diff_traces(a, b).violations(v_rel=1.0, structure=False)
        back = diff_traces(b, a)
        assert ("span", "stage", "stage:mystery") in back.missing_names

    def test_metric_drift_gating_opt_in(self):
        a = records_of(make_trace(units_done=5))
        b = records_of(make_trace(units_done=6))
        diff = diff_traces(a, b)
        assert any(m.name == "units_done" for m in diff.metric_deltas)
        assert not diff.violations(v_rel=0.0)  # report-only by default
        assert diff.violations(v_rel=0.0, metric_rel=0.1)

    def test_vanished_metric_is_infinite_drift(self):
        a = records_of(make_trace())
        b = [r for r in a if r.get("type") != "metrics"] + [
            {"type": "metrics",
             "data": {"counters": {}, "gauges": {}, "histograms": {}}}
        ]
        diff = diff_traces(a, b)
        assert all(m.rel == float("inf") for m in diff.metric_deltas)
        assert diff.violations(metric_rel=1000.0)

    def test_histograms_report_only(self):
        a = records_of(make_trace())
        clock_b = make_trace()
        clock_b.observe("workload_wall_seconds", 99.0)
        diff = diff_traces(a, records_of(clock_b))
        assert diff.histogram_notes
        assert not diff.violations(metric_rel=0.0)


class TestCli:
    def test_identical_seed_traces_exit_zero(self, tmp_path, capsys):
        a = write_jsonl(make_trace(), tmp_path / "a.jsonl")
        b = write_jsonl(make_trace(), tmp_path / "b.jsonl")
        assert main([str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "+0.00% drift" in out
        assert "OK: within thresholds" in out

    def test_drifted_trace_exits_one(self, tmp_path, capsys):
        a = write_jsonl(make_trace(4000.0), tmp_path / "a.jsonl")
        b = write_jsonl(make_trace(4400.0), tmp_path / "b.jsonl")
        assert main([str(a), str(b)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_loose_thresholds_pass(self, tmp_path):
        a = write_jsonl(make_trace(4000.0, units_done=5), tmp_path / "a.jsonl")
        b = write_jsonl(make_trace(4040.0, units_done=5), tmp_path / "b.jsonl")
        assert main([str(a), str(b), "--v-rel", "0.05",
                     "--metric-rel", "0.5"]) == 0

    def test_structural_violations_exit_two(self, tmp_path):
        a = write_jsonl(make_trace(), tmp_path / "a.jsonl")
        b = write_jsonl(make_trace(extra_span=True), tmp_path / "b.jsonl")
        assert main([str(a), str(b), "--v-rel", "1.0"]) == 2
        assert main([str(a), str(b), "--v-rel", "1.0",
                     "--ignore-structure"]) == 0

    def test_structure_trumps_threshold_exit_code(self, tmp_path):
        a = write_jsonl(make_trace(4000.0), tmp_path / "a.jsonl")
        b = write_jsonl(
            make_trace(4400.0, extra_span=True), tmp_path / "b.jsonl"
        )
        # Both kinds of violation present: structure (2) wins, and with
        # structure ignored the drift still fails with 1.
        assert main([str(a), str(b)]) == 2
        assert main([str(a), str(b), "--ignore-structure"]) == 1

    def test_json_output_mode(self, tmp_path, capsys):
        import json as jsonlib

        a = write_jsonl(make_trace(4000.0), tmp_path / "a.jsonl")
        b = write_jsonl(
            make_trace(4400.0, extra_span=True), tmp_path / "b.jsonl"
        )
        assert main([str(a), str(b), "--json"]) == 2
        payload = jsonlib.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 2
        assert payload["structural_violations"]
        assert payload["threshold_violations"]
        assert any(
            d["stage"] == "transcript-assembly" and d["v_rel"] > 0.09
            for d in payload["stages"]
        )

    def test_module_is_runnable(self):
        import repro.obs.diff as mod

        assert callable(mod.main)
