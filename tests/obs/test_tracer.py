"""Tests for the dual-clock tracer core."""

import pytest

from repro.obs import NullTracer, Tracer, get_tracer, set_tracer, use_tracer


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def advance(self, dt):
        self.now += dt


class TestSpans:
    def test_span_records_both_clocks(self):
        clock = FakeClock(100.0)
        tr = Tracer(clock)
        with tr.span("work"):
            clock.advance(50.0)
        (s,) = tr.spans
        assert s.name == "work"
        assert s.v_start == 100.0
        assert s.v_end == 150.0
        assert s.v_duration == 50.0
        assert s.r_end >= s.r_start
        assert s.r_duration >= 0.0

    def test_unbound_clock_yields_none_virtual(self):
        tr = Tracer()
        with tr.span("x"):
            pass
        (s,) = tr.spans
        assert s.v_start is None and s.v_end is None
        assert s.v_duration == 0.0

    def test_bind_clock_late(self):
        tr = Tracer()
        tr.bind_clock(FakeClock(7.0))
        with tr.span("x"):
            pass
        assert tr.spans[0].v_start == 7.0

    def test_nesting_parent_ids(self):
        tr = Tracer(FakeClock())
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                pass
        inner_rec, outer_rec = tr.spans  # inner closes first
        assert inner_rec.name == "inner"
        assert inner_rec.parent_id == outer.span_id
        assert outer_rec.parent_id is None
        assert inner.span_id != outer.span_id

    def test_track_inheritance(self):
        tr = Tracer(FakeClock())
        with tr.span("outer", process="pilot.0", thread="unit.1"):
            with tr.span("inner"):
                pass
            with tr.span("other", thread="unit.2"):
                pass
        inner, other, outer = tr.spans
        assert (inner.process, inner.thread) == ("pilot.0", "unit.1")
        assert (other.process, other.thread) == ("pilot.0", "unit.2")
        assert (outer.process, outer.thread) == ("pilot.0", "unit.1")

    def test_handle_set_merges_attrs(self):
        tr = Tracer(FakeClock())
        with tr.span("x", a=1) as sp:
            sp.set(b=2)
        assert tr.spans[0].attrs == {"a": 1, "b": 2}

    def test_span_survives_exception(self):
        tr = Tracer(FakeClock())
        with pytest.raises(RuntimeError):
            with tr.span("x"):
                raise RuntimeError("boom")
        assert len(tr.spans) == 1

    def test_add_span_retroactive(self):
        tr = Tracer(FakeClock(999.0))
        tr.add_span("vm", v_start=10.0, v_end=30.0, category="cloud", vm="i-1")
        (s,) = tr.spans
        assert s.v_start == 10.0 and s.v_end == 30.0
        assert s.v_duration == 20.0
        assert s.attrs == {"vm": "i-1"}

    def test_add_span_explicit_real_interval(self):
        tr = Tracer()
        tr.add_span("x", v_start=0.0, v_end=1.0, r_start=5.0, r_end=9.0)
        assert tr.spans[0].r_duration == 4.0


class TestEvents:
    def test_event_stamped_from_clock(self):
        clock = FakeClock(42.0)
        tr = Tracer(clock)
        tr.event("fire", category="events", tag="t")
        (e,) = tr.events
        assert e.v_time == 42.0
        assert e.attrs == {"tag": "t"}

    def test_event_v_override(self):
        tr = Tracer(FakeClock(42.0))
        tr.event("fire", v=7.0)
        assert tr.events[0].v_time == 7.0

    def test_event_inherits_enclosing_span_track(self):
        tr = Tracer(FakeClock())
        with tr.span("outer", process="p", thread="t"):
            tr.event("inside")
        assert (tr.events[0].process, tr.events[0].thread) == ("p", "t")


class TestRecords:
    def test_records_are_dicts_sorted_by_real_time(self):
        tr = Tracer(FakeClock())
        with tr.span("a"):
            pass
        tr.event("b")
        recs = tr.records()
        assert [r["type"] for r in recs] == ["span", "event"]
        assert recs[0]["name"] == "a"
        assert recs[1]["name"] == "b"

    def test_metric_conveniences(self):
        tr = Tracer()
        tr.count("jobs")
        tr.count("jobs", 2)
        tr.gauge("vms", 4)
        tr.observe("wait", 1.5)
        snap = tr.metrics.snapshot()
        assert snap["counters"]["jobs"] == 3
        assert snap["gauges"]["vms"] == 4
        assert snap["histograms"]["wait"]["count"] == 1


class TestInstallation:
    def test_default_is_null_tracer(self):
        assert isinstance(get_tracer(), NullTracer)
        assert get_tracer().enabled is False

    def test_set_and_restore(self):
        tr = Tracer()
        prev = set_tracer(tr)
        try:
            assert get_tracer() is tr
        finally:
            set_tracer(prev)
        assert isinstance(get_tracer(), NullTracer)

    def test_use_tracer_scoped(self):
        tr = Tracer()
        with use_tracer(tr) as active:
            assert active is tr
            assert get_tracer() is tr
        assert isinstance(get_tracer(), NullTracer)

    def test_use_tracer_none_restores_default(self):
        tr = Tracer()
        with use_tracer(tr):
            with use_tracer(None):
                assert isinstance(get_tracer(), NullTracer)
            assert get_tracer() is tr


class TestNullTracer:
    def test_everything_is_a_noop(self):
        nt = NullTracer()
        with nt.span("x", a=1) as sp:
            sp.set(b=2)
        nt.add_span("y", v_start=0, v_end=1)
        nt.event("z")
        nt.count("c")
        nt.gauge("g", 1)
        nt.observe("h", 1)
        nt.bind_clock(FakeClock())
        assert nt.spans == []
        assert nt.events == []
        assert nt.metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
        assert nt.clock is None  # bind_clock ignored

    def test_span_context_is_reusable_singleton(self):
        nt = NullTracer()
        assert nt.span("a") is nt.span("b")
