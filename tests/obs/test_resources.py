"""Tests for the RSS/CPU resource samplers."""

import pickle
import time

import pytest

from repro.obs.resources import (
    CadenceSampler,
    ResourceSampler,
    read_cpu_seconds,
    read_rss_bytes,
)


class TestReaders:
    def test_rss_positive(self):
        rss = read_rss_bytes()
        assert rss > 1024 * 1024  # a Python process is at least a MiB

    def test_cpu_cumulative(self):
        c0 = read_cpu_seconds()
        # burn a little CPU so the counter visibly advances
        sum(i * i for i in range(200_000))
        assert read_cpu_seconds() >= c0 >= 0.0


class TestResourceSampler:
    def test_sample_fields(self):
        s = ResourceSampler().sample()
        assert s.rss_bytes > 0
        assert s.cpu_seconds >= 0.0
        assert s.r_time <= time.perf_counter()

    def test_sample_picklable(self):
        s = ResourceSampler().sample()
        assert pickle.loads(pickle.dumps(s)) == s


class TestCadenceSampler:
    def test_collects_on_cadence_and_stops(self):
        got = []
        sampler = CadenceSampler(0.005, got.append)
        sampler.start()
        time.sleep(0.05)
        sampler.stop()
        assert len(got) >= 2
        n = len(got)
        time.sleep(0.02)
        assert len(got) == n

    def test_stop_idempotent(self):
        sampler = CadenceSampler(0.01, lambda s: None)
        sampler.start()
        sampler.stop()
        sampler.stop()

    def test_stop_before_start_is_noop(self):
        CadenceSampler(0.01, lambda s: None).stop()

    def test_restart_after_stop_samples_again(self):
        # Regression: stop() used to leave the stop event set, so a
        # restarted sampler's thread exited on its first wait.
        got = []
        sampler = CadenceSampler(0.005, got.append)
        sampler.start()
        time.sleep(0.03)
        sampler.stop()
        n = len(got)
        assert n >= 1
        sampler.start()
        time.sleep(0.03)
        sampler.stop()
        assert len(got) > n

    def test_concurrent_stops_join_once(self):
        # Regression: the unlocked check-then-join let two stoppers race;
        # now exactly one caller takes and joins the thread.
        import threading

        sampler = CadenceSampler(0.005, lambda s: None)
        sampler.start()
        stoppers = [
            threading.Thread(target=sampler.stop) for _ in range(8)
        ]
        for t in stoppers:
            t.start()
        for t in stoppers:
            t.join(timeout=5.0)
        assert all(not t.is_alive() for t in stoppers)
        assert sampler._thread is None

    def test_stop_from_callback_thread_does_not_self_join(self):
        # A callback deciding to stop must not deadlock on joining the
        # very thread it runs on.
        import threading

        done = threading.Event()
        holder = {}

        def callback(sample):
            holder["sampler"].stop()
            done.set()

        holder["sampler"] = CadenceSampler(0.005, callback)
        holder["sampler"].start()
        assert done.wait(timeout=5.0)
        # the thread winds down on its own; a second stop stays safe
        holder["sampler"].stop()

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            CadenceSampler(0.0, lambda s: None)
