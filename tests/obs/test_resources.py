"""Tests for the RSS/CPU resource samplers."""

import pickle
import time

import pytest

from repro.obs.resources import (
    CadenceSampler,
    ResourceSampler,
    read_cpu_seconds,
    read_rss_bytes,
)


class TestReaders:
    def test_rss_positive(self):
        rss = read_rss_bytes()
        assert rss > 1024 * 1024  # a Python process is at least a MiB

    def test_cpu_cumulative(self):
        c0 = read_cpu_seconds()
        # burn a little CPU so the counter visibly advances
        sum(i * i for i in range(200_000))
        assert read_cpu_seconds() >= c0 >= 0.0


class TestResourceSampler:
    def test_sample_fields(self):
        s = ResourceSampler().sample()
        assert s.rss_bytes > 0
        assert s.cpu_seconds >= 0.0
        assert s.r_time <= time.perf_counter()

    def test_sample_picklable(self):
        s = ResourceSampler().sample()
        assert pickle.loads(pickle.dumps(s)) == s


class TestCadenceSampler:
    def test_collects_on_cadence_and_stops(self):
        got = []
        sampler = CadenceSampler(0.005, got.append)
        sampler.start()
        time.sleep(0.05)
        sampler.stop()
        assert len(got) >= 2
        n = len(got)
        time.sleep(0.02)
        assert len(got) == n

    def test_stop_idempotent(self):
        sampler = CadenceSampler(0.01, lambda s: None)
        sampler.start()
        sampler.stop()
        sampler.stop()

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            CadenceSampler(0.0, lambda s: None)
