"""The SLO/alert rules engine (repro.obs.alerts)."""

import pytest

from repro.obs import Tracer
from repro.obs.alerts import (
    Alert,
    AlertEngine,
    AlertRule,
    default_rules,
    evaluate,
    parse_rule,
)


def span(name, cat, v0=0.0, v1=0.0, r0=0.0, r1=0.0, **attrs):
    return {
        "type": "span", "name": name, "cat": cat, "process": "main",
        "thread": "t", "v0": v0, "v1": v1, "r0": r0, "r1": r1,
        "id": 1, "parent": None, "attrs": attrs,
    }


def event(name, cat, r=0.0, **attrs):
    return {
        "type": "event", "name": name, "cat": cat, "process": "main",
        "thread": "t", "v": 0.0, "r": r, "attrs": attrs,
    }


class TestRuleParsing:
    def test_compact_specs(self):
        rule = parse_rule("stage_duration:transcript-*:5000:critical")
        assert rule == AlertRule(
            kind="stage_duration",
            target="transcript-*",
            threshold=5000.0,
            severity="critical",
        )
        assert parse_rule("budget_burn:1.25").threshold == 1.25
        assert parse_rule("heartbeat_timeout:30:critical").severity == "critical"
        assert parse_rule("cache_hit_rate:kmer_table:0.5").target == "kmer_table"
        assert parse_rule("straggler").kind == "straggler"

    def test_spec_round_trips(self):
        for spec in (
            "stage_duration:transcript-*:5000:critical",
            "budget_burn:1.25:warning",
            "heartbeat_timeout:30:critical",
            "cache_hit_rate:kmer_table:0.5:warning",
            "straggler:warning",
        ):
            assert parse_rule(spec).spec == spec
            assert parse_rule(parse_rule(spec).spec) == parse_rule(spec)

    def test_rule_passthrough(self):
        rule = AlertRule(kind="straggler")
        assert parse_rule(rule) is rule

    def test_rejects_bad_specs(self):
        for bad in (
            "",
            "no_such_kind:1",
            "budget_burn",  # threshold required
            "stage_duration:5000",  # target required, then threshold
            "budget_burn:1.25:warning:extra",
            "heartbeat_timeout:30:catastrophic",
        ):
            with pytest.raises(ValueError):
                parse_rule(bad)

    def test_default_rules_parse(self):
        kinds = [r.kind for r in default_rules()]
        assert kinds == ["straggler", "heartbeat_timeout", "budget_burn"]


class TestStageDuration:
    def test_fires_on_blown_slo_with_fnmatch_target(self):
        alerts = evaluate(
            [
                span("pre-processing", "stage", v0=0.0, v1=10.0,
                     stage="pre-processing"),
                span("transcript-assembly", "stage", v0=0.0, v1=900.0,
                     stage="transcript-assembly"),
            ],
            ["stage_duration:transcript-*:500:critical"],
        )
        assert len(alerts) == 1
        assert alerts[0].rule == "stage_duration"
        assert alerts[0].severity == "critical"
        assert alerts[0].attrs["stage"] == "transcript-assembly"
        assert alerts[0].attrs["ttc_s"] == 900.0

    def test_within_slo_is_silent(self):
        alerts = evaluate(
            [span("s", "stage", v0=0.0, v1=10.0, stage="s")],
            ["stage_duration:*:500"],
        )
        assert alerts == []


class TestBudgetBurn:
    def test_fires_mid_run_once_billing_passes_threshold(self):
        engine = AlertEngine(["budget_burn:1.25:critical"])
        engine.emit(event("planner.prediction", "planner", cost_usd=1.0))
        engine.emit(span("vm.lifetime", "cloud", cost_usd=0.84))
        assert engine.alerts == []  # 84% burn: under the limit
        engine.emit(span("vm.lifetime", "cloud", cost_usd=0.84))
        assert len(engine.alerts) == 1  # 168% burn
        alert = engine.alerts[0]
        assert alert.rule == "budget_burn"
        assert alert.attrs["burn"] == pytest.approx(1.68)
        # more billing does not re-fire the same rule
        engine.emit(span("vm.lifetime", "cloud", cost_usd=0.84))
        assert len(engine.alerts) == 1

    def test_needs_a_prediction(self):
        alerts = evaluate(
            [span("vm.lifetime", "cloud", cost_usd=100.0)],
            ["budget_burn:1.25"],
        )
        assert alerts == []

    def test_late_prediction_checked_at_finalize(self):
        engine = AlertEngine(["budget_burn:1.1"])
        engine.emit(span("vm.lifetime", "cloud", cost_usd=2.0))
        engine.emit(event("planner.prediction", "planner", cost_usd=1.0))
        engine.finalize()
        assert len(engine.alerts) == 1


class TestHeartbeatTimeout:
    def test_fires_per_unit_once(self):
        records = [
            event("unit.heartbeat", "heartbeat", unit="ray_k35",
                  elapsed_r=10.0),
            event("unit.heartbeat", "heartbeat", unit="ray_k35",
                  elapsed_r=20.0),
            event("unit.heartbeat", "heartbeat", unit="ray_k41",
                  elapsed_r=1.0),
        ]
        alerts = evaluate(records, ["heartbeat_timeout:5:critical"])
        assert len(alerts) == 1
        assert alerts[0].attrs["unit"] == "ray_k35"


class TestStraggler:
    def test_echoes_detector_verdicts(self):
        alerts = evaluate(
            [
                event("unit.straggler", "heartbeat", severity="warning",
                      unit="ray_k41", elapsed_r=9.0, threshold_r=2.0,
                      peer_median_r=1.0, peers=3),
            ],
            ["straggler"],
        )
        assert len(alerts) == 1
        assert alerts[0].rule == "straggler"
        assert alerts[0].attrs["unit"] == "ray_k41"
        # the detector's own severity tag must not shadow the rule's
        assert alerts[0].severity == "warning"


class TestCacheHitRate:
    def test_floor_checked_at_finalize_from_metric_deltas(self):
        engine = AlertEngine(["cache_hit_rate:assembly_cache:0.5"])
        for name, value in (
            ("assembly_cache.hit", 1), ("assembly_cache.miss", 9),
        ):
            engine.emit(
                {"type": "metric", "kind": "counter", "name": name,
                 "value": value, "r": 0.0}
            )
        assert engine.alerts == []  # end-of-stream rule
        engine.finalize()
        assert len(engine.alerts) == 1
        assert engine.alerts[0].attrs["hit_rate"] == pytest.approx(0.1)

    def test_snapshot_supersedes_deltas(self):
        engine = AlertEngine(["cache_hit_rate:c:0.5"])
        engine.emit(
            {"type": "metric", "kind": "counter", "name": "c.miss",
             "value": 100, "r": 0.0}
        )
        engine.emit(
            {"type": "metrics",
             "data": {"counters": {"c.hit": 9, "c.miss": 1}}}
        )
        engine.finalize()
        assert engine.alerts == []  # snapshot says 90% hits

    def test_empty_cache_is_silent(self):
        alerts = evaluate([], ["cache_hit_rate:nothing:0.9"])
        assert alerts == []


class TestEngineAsSink:
    def test_firing_lands_in_tracer_and_counters(self):
        tracer = Tracer()
        engine = tracer.add_sink(
            AlertEngine(["heartbeat_timeout:5:critical"], tracer=tracer)
        )
        tracer.event(
            "unit.heartbeat", category="heartbeat", unit="u", elapsed_r=10.0
        )
        alert_events = [e for e in tracer.events if e.category == "alert"]
        assert len(alert_events) == 1
        assert alert_events[0].attrs["rule"] == "heartbeat_timeout"
        assert alert_events[0].attrs["severity"] == "critical"
        assert tracer.metrics.counters["alerts.critical"].value == 1
        assert len(engine.alerts) == 1

    def test_does_not_recurse_on_its_own_output(self):
        tracer = Tracer()
        engine = tracer.add_sink(
            AlertEngine(["heartbeat_timeout:5"], tracer=tracer)
        )
        tracer.event(
            "unit.heartbeat", category="heartbeat", unit="u", elapsed_r=10.0
        )
        tracer.event(
            "unit.heartbeat", category="heartbeat", unit="u", elapsed_r=11.0
        )
        assert len(engine.alerts) == 1

    def test_summary_counts_by_severity(self):
        engine = AlertEngine([])
        engine.alerts.extend(
            [
                Alert(rule="straggler", severity="warning", message="w"),
                Alert(rule="budget_burn", severity="critical", message="c"),
                Alert(rule="budget_burn", severity="critical", message="c2"),
            ]
        )
        assert engine.summary() == {"warning": 1, "critical": 2}
