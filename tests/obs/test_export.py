"""Tests for the JSONL / Chrome-trace / text exporters."""

import json

import pytest

from repro.obs import (
    Tracer,
    chrome_trace,
    load_jsonl,
    text_summary,
    write_chrome,
    write_jsonl,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def advance(self, dt):
        self.now += dt


def make_tracer() -> Tracer:
    clock = FakeClock()
    tr = Tracer(clock)
    with tr.span("stage:pre", category="stage", process="pilot.0", stage="pre"):
        clock.advance(100.0)
        tr.event("unit.state", category="state", thread="unit.0", new="DONE")
    tr.add_span(
        "vm.lifetime", v_start=0.0, v_end=400.0,
        category="cloud", process="ec2", thread="i-0",
    )
    tr.count("vms_launched")
    tr.observe("wait", 3.0)
    return tr


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        tr = make_tracer()
        path = write_jsonl(tr, tmp_path / "trace.jsonl")
        records = load_jsonl(path)
        # every span + event, plus the trailing metrics snapshot
        assert len(records) == len(tr.spans) + len(tr.events) + 1
        assert records[-1]["type"] == "metrics"
        assert records[-1]["data"]["counters"]["vms_launched"] == 1
        names = {r["name"] for r in records if r["type"] != "metrics"}
        assert names == {"stage:pre", "unit.state", "vm.lifetime"}

    def test_plain_record_source_has_no_metrics(self, tmp_path):
        tr = make_tracer()
        path = write_jsonl(tr.records(), tmp_path / "t.jsonl")
        assert all(r["type"] != "metrics" for r in load_jsonl(path))


class TestChromeTrace:
    def test_structure(self):
        doc = chrome_trace(make_tracer())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        # one process_name per track + one thread_name per (proc, thread)
        assert {m["args"]["name"] for m in meta if m["name"] == "process_name"} \
            == {"pilot.0", "ec2"}
        assert len(spans) == 2
        assert len(instants) == 1

    def test_virtual_timestamps_in_microseconds(self):
        doc = chrome_trace(make_tracer())
        span = next(
            e for e in doc["traceEvents"] if e.get("name") == "stage:pre"
        )
        assert span["ts"] == 0.0
        assert span["dur"] == pytest.approx(100.0 * 1e6)
        assert span["args"]["v_seconds"] == pytest.approx(100.0)

    def test_tracks_map_to_stable_numeric_ids(self):
        doc = chrome_trace(make_tracer())
        span = next(
            e for e in doc["traceEvents"] if e.get("name") == "stage:pre"
        )
        vm = next(
            e for e in doc["traceEvents"] if e.get("name") == "vm.lifetime"
        )
        assert span["pid"] != vm["pid"]
        assert isinstance(span["pid"], int) and isinstance(span["tid"], int)

    def test_unclocked_spans_skipped_on_virtual_timeline(self):
        tr = Tracer()  # no clock bound -> v0/v1 are None
        with tr.span("x"):
            pass
        assert chrome_trace(tr, clock="virtual")["traceEvents"] == []
        real = chrome_trace(tr, clock="real")["traceEvents"]
        assert any(e["ph"] == "X" for e in real)

    def test_invalid_clock_rejected(self):
        with pytest.raises(ValueError):
            chrome_trace(make_tracer(), clock="lunar")

    def test_write_chrome_is_valid_json(self, tmp_path):
        path = write_chrome(make_tracer(), tmp_path / "chrome.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestTextSummary:
    def test_contains_counts_and_metrics(self):
        text = text_summary(make_tracer())
        assert "2 spans, 1 events" in text
        assert "stage" in text and "cloud" in text
        assert "vms_launched" in text
        assert "hottest spans (virtual" in text

    def test_works_on_loaded_records(self, tmp_path):
        tr = make_tracer()
        records = load_jsonl(write_jsonl(tr, tmp_path / "t.jsonl"))
        text = text_summary(records)
        assert "vms_launched" in text  # metrics record picked up


class TestJsonDefault:
    """Exporter robustness for non-JSON-native tag values (satellite:
    numpy scalars and bytes land in span attrs from the assembly layer)."""

    def test_numpy_scalars_serialize_as_numbers(self):
        np = pytest.importorskip("numpy")
        from repro.obs.export import dump_record

        record = {
            "type": "event",
            "attrs": {
                "k": np.int64(41),
                "coverage": np.float32(7.5),
                "counts": np.array([1, 2, 3]),
            },
        }
        loaded = json.loads(dump_record(record))
        assert loaded["attrs"]["k"] == 41
        assert loaded["attrs"]["coverage"] == 7.5
        assert loaded["attrs"]["counts"] == [1, 2, 3]

    def test_bytes_decode_or_hex(self):
        from repro.obs.export import dump_record

        loaded = json.loads(
            dump_record(
                {"attrs": {"tag": b"ACGT", "digest": b"\xde\xad\xbe\xef"}}
            )
        )
        assert loaded["attrs"]["tag"] == "ACGT"
        assert loaded["attrs"]["digest"] == "hex:deadbeef"

    def test_sets_sorted_and_fallback_repr(self):
        from repro.obs.export import dump_record

        class Odd:
            def __repr__(self):
                return "<odd>"

        loaded = json.loads(
            dump_record({"attrs": {"ks": {41, 35}, "obj": Odd()}})
        )
        assert loaded["attrs"]["ks"] == [35, 41]
        assert loaded["attrs"]["obj"] == "<odd>"

    def test_traced_numpy_tags_survive_write_jsonl(self, tmp_path):
        np = pytest.importorskip("numpy")
        tr = Tracer(FakeClock())
        with tr.span("assemble", category="unit", k=np.int64(41),
                     n50=np.float64(1234.5)):
            pass
        path = write_jsonl(tr, tmp_path / "np.jsonl")
        [span] = [r for r in load_jsonl(path) if r["type"] == "span"]
        assert span["attrs"] == {"k": 41, "n50": 1234.5}
