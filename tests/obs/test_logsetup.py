"""Tests for virtual-clock-stamped logging."""

import io
import logging

from repro.obs import Tracer, VirtualClockFormatter, logging_setup, use_tracer


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


def record(msg="hello"):
    return logging.LogRecord(
        "repro.test", logging.WARNING, __file__, 1, msg, None, None
    )


class TestFormatter:
    def test_explicit_clock(self):
        fmt = VirtualClockFormatter(clock=FakeClock(1234.5))
        assert "[v=    1234.5s]" in fmt.format(record())

    def test_clock_from_current_tracer(self):
        tr = Tracer(FakeClock(42.0))
        fmt = VirtualClockFormatter()
        with use_tracer(tr):
            assert "[v=      42.0s]" in fmt.format(record())

    def test_no_clock_placeholder(self):
        assert "[v=        --]" in VirtualClockFormatter().format(record())

    def test_message_and_logger_name_present(self):
        out = VirtualClockFormatter(clock=FakeClock()).format(record("boom"))
        assert "boom" in out and "repro.test" in out and "WARNING" in out


class TestLoggingSetup:
    def teardown_method(self):
        # drop any handler this test installed
        logger = logging.getLogger("repro")
        for h in list(logger.handlers):
            if getattr(h, "_repro_obs_handler", False):
                logger.removeHandler(h)

    def test_routes_module_loggers_to_stream(self):
        stream = io.StringIO()
        logging_setup(stream=stream, clock=FakeClock(10.0))
        logging.getLogger("repro.pilot.agent").warning("capacity capped")
        out = stream.getvalue()
        assert "capacity capped" in out
        assert "[v=      10.0s]" in out
        assert "repro.pilot.agent" in out

    def test_idempotent(self):
        s1, s2 = io.StringIO(), io.StringIO()
        logging_setup(stream=s1)
        logging_setup(stream=s2)
        logging.getLogger("repro.x").warning("once")
        assert s1.getvalue() == ""  # first handler was replaced
        assert s2.getvalue().count("once") == 1

    def test_level_filtering(self):
        stream = io.StringIO()
        logging_setup(level=logging.WARNING, stream=stream)
        logging.getLogger("repro.y").info("quiet")
        logging.getLogger("repro.y").warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_package_import_installs_null_handler(self):
        import repro

        root = logging.getLogger("repro")
        assert any(
            isinstance(h, logging.NullHandler) for h in root.handlers
        ), repro.__name__
