"""Tests for the virtual-time critical-path engine."""

import json

import pytest

from repro.obs.critpath import (
    EPS,
    compute_critical_path,
    main,
    parse_what_if,
    what_if,
)


def span(name, cat, v0, v1, sid, parent=None, process="p0", **attrs):
    return {
        "type": "span", "name": name, "cat": cat, "process": process,
        "thread": "main", "v0": v0, "v1": v1, "r0": 0.0, "r1": 0.0,
        "id": sid, "parent": parent, "attrs": attrs,
    }


def diamond_trace():
    """A diamond DAG: prep -> (two parallel units) -> merge.

    The slow branch (u_slow, 40..90) bounds the run; the fast branch
    (u_fast, 40..70) has 20 s of slack.
    """
    return [
        span("pipeline", "pipeline", 0.0, 100.0, 1),
        span("prep", "unit", 0.0, 40.0, 2, parent=1),
        span("u_slow", "unit", 40.0, 90.0, 3, parent=1),
        span("u_fast", "unit", 40.0, 70.0, 4, parent=1),
        span("merge", "unit", 90.0, 100.0, 5, parent=1),
    ]


class TestDiamond:
    def test_path_follows_slow_branch(self):
        path = compute_critical_path(diamond_trace())
        assert [s.name for s in path.segments] == ["prep", "u_slow", "merge"]

    def test_total_equals_pipeline_ttc_exactly(self):
        path = compute_critical_path(diamond_trace())
        assert path.total == 100.0  # exact: same subtraction as the TTC

    def test_segments_tile_the_run(self):
        path = compute_critical_path(diamond_trace())
        assert path.segments[0].v_start == path.v_start
        assert path.segments[-1].v_end == path.v_end
        for a, b in zip(path.segments, path.segments[1:]):
            assert a.v_end == b.v_start

    def test_slack_of_off_path_branch(self):
        records = diamond_trace()
        path = compute_critical_path(records)
        fast = next(s for s in records if s["name"] == "u_fast")
        slow = next(s for s in records if s["name"] == "u_slow")
        assert path.slack(fast) == pytest.approx(20.0)
        assert path.slack(slow) == pytest.approx(0.0)

    def test_rollups(self):
        path = compute_critical_path(diamond_trace())
        assert path.by_name() == {"u_slow": 50.0, "prep": 40.0, "merge": 10.0}
        assert path.by_category() == {"unit": 100.0}


class TestOverlapAndGaps:
    def test_overlapping_prefetch_gets_slack_not_path(self):
        # A cloud-side prefetch (0..45) overlaps both exec spans but
        # never bounds the run: the execs release the clock at 30/50.
        records = [
            span("pipeline", "pipeline", 0.0, 50.0, 1),
            span("exec:a", "unit", 0.0, 30.0, 2, parent=1),
            span("prefetch", "cloud", 0.0, 45.0, 3, parent=1),
            span("exec:b", "unit", 30.0, 50.0, 4, parent=1),
        ]
        path = compute_critical_path(records)
        assert [s.name for s in path.segments] == ["exec:a", "exec:b"]
        prefetch = records[2]
        assert path.slack(prefetch) == pytest.approx(5.0)

    def test_idle_gaps_are_explicit_segments(self):
        records = [
            span("pipeline", "pipeline", 0.0, 100.0, 1),
            span("work", "unit", 20.0, 60.0, 2, parent=1),
        ]
        path = compute_critical_path(records)
        assert [s.name for s in path.segments] == ["(idle)", "work", "(idle)"]
        assert path.total == 100.0
        idle = path.by_category()["idle"]
        assert idle == pytest.approx(60.0)

    def test_worker_real_time_spans_are_ignored(self):
        records = diamond_trace() + [
            {
                "type": "span", "name": "workload", "cat": "worker",
                "process": "worker-1", "thread": "u1", "v0": None,
                "v1": None, "r0": 1.0, "r1": 2.0, "id": 9, "parent": 3,
                "attrs": {},
            }
        ]
        path = compute_critical_path(records)
        assert [s.name for s in path.segments] == ["prep", "u_slow", "merge"]

    def test_instantaneous_spans_cannot_bound_the_run(self):
        records = diamond_trace() + [
            span("marker", "unit", 90.0, 90.0 + EPS / 2, 9, parent=1)
        ]
        path = compute_critical_path(records)
        assert "marker" not in [s.name for s in path.segments]

    def test_float_accumulated_clock_still_exact(self):
        # Virtual stamps are sums of float advances; the hull subtraction
        # must still match the pipeline TTC bit-for-bit.
        t = 0.0
        stamps = [t]
        for _ in range(1000):
            t += 0.1
            stamps.append(t)
        records = [span("pipeline", "pipeline", stamps[0], stamps[-1], 1)]
        records += [
            span(f"u{i}", "unit", stamps[i], stamps[i + 1], i + 2, parent=1)
            for i in range(1000)
        ]
        path = compute_critical_path(records)
        assert path.total == stamps[-1] - stamps[0]  # exact

    def test_no_virtual_spans_raises(self):
        with pytest.raises(ValueError):
            compute_critical_path([])


class TestWhatIf:
    def test_parse(self):
        assert parse_what_if("exec:ray_*=0.5") == ("exec:ray_*", 0.5)
        assert parse_what_if("cat:unit=2") == ("cat:unit", 2.0)
        with pytest.raises(ValueError):
            parse_what_if("no-factor")

    def test_scales_matching_segments(self):
        path = compute_critical_path(diamond_trace())
        proj = what_if(path, [("u_slow", 0.5)])
        assert proj.baseline_s == 100.0
        assert proj.projected_s == pytest.approx(75.0)
        assert proj.delta_s == pytest.approx(-25.0)
        assert proj.matched_segments == 1

    def test_category_pattern_and_first_match_wins(self):
        path = compute_critical_path(diamond_trace())
        proj = what_if(path, [("u_slow", 0.0), ("cat:unit", 2.0)])
        # u_slow hits the first query (0x), the rest double.
        assert proj.projected_s == pytest.approx(100.0)
        assert proj.matched_segments == 3


def write_trace(tmp_path, records):
    path = tmp_path / "trace.jsonl"
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return str(path)


class TestCli:
    def test_exit_zero_when_path_matches_ttc(self, tmp_path, capsys):
        assert main([write_trace(tmp_path, diamond_trace())]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "matches" in out

    def test_exit_two_without_virtual_spans(self, tmp_path, capsys):
        assert main([write_trace(tmp_path, [])]) == 2
        assert "error" in capsys.readouterr().err

    def test_json_payload(self, tmp_path, capsys):
        code = main(
            [
                write_trace(tmp_path, diamond_trace()),
                "--json",
                "--what-if", "u_slow=0.5",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matches_pipeline_ttc"] is True
        assert payload["total_virtual_s"] == 100.0
        assert payload["pipeline_ttc_s"] == 100.0
        assert [s["name"] for s in payload["segments"]] == [
            "prep", "u_slow", "merge",
        ]
        assert payload["what_if"]["projected_s"] == pytest.approx(75.0)

    def test_module_is_runnable(self):
        import repro.obs.critpath as mod

        assert callable(mod.main)
