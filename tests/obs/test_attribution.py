"""Tests for dollar/node-second attribution and the planner gate."""

import json

import pytest

from repro.obs.attribution import (
    IDLE,
    PROVISION,
    SETUP,
    attribute_costs,
    format_attribution,
    main,
    planner_violations,
)


def span(name, cat, v0, v1, sid, thread="main", **attrs):
    return {
        "type": "span", "name": name, "cat": cat, "process": "p0",
        "thread": thread, "v0": v0, "v1": v1, "r0": 0.0, "r1": 0.0,
        "id": sid, "parent": None, "attrs": attrs,
    }


def event(name, cat, v, **attrs):
    return {
        "type": "event", "name": name, "cat": cat, "process": "p0",
        "thread": "main", "v": v, "r": 0.0, "attrs": attrs,
    }


def make_run_trace(planner_ttc=95.0, planner_cost=0.80):
    """A hand-built single-run trace with two billed VMs.

    vm-1 lives the whole run (provision 0..10, setup 10..20, then the
    stages); vm-2 only exists for the assembly stage.  All boundaries
    are chosen so every bucket duration is a round number.
    """
    return [
        span(
            "pipeline", "pipeline", 0.0, 100.0, 1,
            dataset="toy", config_fingerprint="cafe0123",
            store_digest="feed4567", scheme="S2", workflow="multi-k",
            assemblers=["ray"], total_cost_usd=0.84,
            planner_ttc_s=planner_ttc, planner_cost_usd=planner_cost,
        ),
        span("vm.provision", "cloud", 0.0, 10.0, 2, vm_ids=["vm-1"]),
        span("cluster.setup:shared", "cloud", 10.0, 20.0, 3),
        span(
            "vm.lifetime", "cloud", 0.0, 100.0, 4, thread="vm-1",
            vm_id="vm-1", pilot="head", instance_type="c3.2xlarge",
            cost_usd=0.5,
        ),
        span(
            "vm.lifetime", "cloud", 20.0, 90.0, 5, thread="vm-2",
            vm_id="vm-2", pilot="workers", instance_type="c3.2xlarge",
            cost_usd=0.34,
        ),
        span(
            "stage:pre", "stage", 0.0, 20.0, 6, stage="pre-processing"
        ),
        span(
            "stage:assembly", "stage", 20.0, 90.0, 7,
            stage="transcript-assembly",
        ),
        span(
            "stage:quant", "stage", 90.0, 100.0, 8, stage="quantification"
        ),
        span(
            "exec:ray_k25", "unit", 20.0, 60.0, 9, thread="u0",
            stage="transcript-assembly", unit="ray_k25",
            assembler="ray", k=25, nodes=2,
        ),
        span(
            "exec:ray_k31", "unit", 20.0, 50.0, 10, thread="u1",
            stage="transcript-assembly", unit="ray_k31",
            assembler="ray", k=31, nodes=1,
        ),
        event(
            "assembly_cache.lookup", "cache", 20.0,
            assembler="ray", k=25, outcome="miss",
        ),
        event(
            "assembly_cache.lookup", "cache", 20.0,
            assembler="ray", k=31, outcome="hit",
        ),
    ]


class TestPartition:
    def test_buckets_tile_each_vm_uptime(self):
        attr = attribute_costs(make_run_trace())
        for vm in attr.vms:
            assert sum(vm.seconds.values()) == pytest.approx(vm.uptime_s)

    def test_vm1_bucket_seconds(self):
        attr = attribute_costs(make_run_trace())
        vm1 = next(v for v in attr.vms if v.vm_id == "vm-1")
        assert vm1.seconds == {
            PROVISION: pytest.approx(10.0),
            SETUP: pytest.approx(10.0),
            "transcript-assembly": pytest.approx(70.0),
            "quantification": pytest.approx(10.0),
        }

    def test_provision_window_only_applies_to_its_own_vm(self):
        attr = attribute_costs(make_run_trace())
        vm2 = next(v for v in attr.vms if v.vm_id == "vm-2")
        assert PROVISION not in vm2.seconds
        assert vm2.seconds == {"transcript-assembly": pytest.approx(70.0)}

    def test_uncovered_time_is_idle(self):
        records = [
            span("pipeline", "pipeline", 0.0, 100.0, 1, total_cost_usd=0.1),
            span(
                "vm.lifetime", "cloud", 0.0, 100.0, 2, thread="vm-1",
                vm_id="vm-1", pilot="head", instance_type="c3.2xlarge",
                cost_usd=0.1,
            ),
            span("stage:pre", "stage", 0.0, 30.0, 3, stage="pre-processing"),
        ]
        attr = attribute_costs(records)
        assert attr.vms[0].seconds[IDLE] == pytest.approx(70.0)


class TestDollars:
    def test_per_vm_dollars_sum_back_to_cost(self):
        attr = attribute_costs(make_run_trace())
        for vm in attr.vms:
            assert sum(vm.dollars().values()) == pytest.approx(
                vm.cost_usd, abs=1e-12
            )

    def test_bucket_total_equals_billing_total(self):
        attr = attribute_costs(make_run_trace())
        assert attr.total_usd == pytest.approx(0.84)
        assert sum(attr.by_bucket.values()) == pytest.approx(
            attr.total_usd, abs=1e-12
        )
        assert attr.billed_usd == pytest.approx(0.84)

    def test_by_pilot(self):
        attr = attribute_costs(make_run_trace())
        assert attr.by_pilot == {
            "head": pytest.approx(0.5), "workers": pytest.approx(0.34)
        }

    def test_no_billing_spans_raises(self):
        with pytest.raises(ValueError):
            attribute_costs(
                [span("pipeline", "pipeline", 0.0, 1.0, 1)]
            )


class TestAssemblySubdivision:
    def test_jobs_split_by_node_seconds(self):
        attr = attribute_costs(make_run_trace())
        jobs = {(j.assembler, j.k): j for j in attr.assembly_jobs}
        k25, k31 = jobs[("ray", 25)], jobs[("ray", 31)]
        assert k25.node_seconds == pytest.approx(80.0)  # 40 s x 2 nodes
        assert k31.node_seconds == pytest.approx(30.0)
        assembly_usd = attr.by_bucket["transcript-assembly"]
        assert k25.cost_usd == pytest.approx(assembly_usd * 80 / 110)
        assert k25.cost_usd + k31.cost_usd == pytest.approx(assembly_usd)

    def test_cache_provenance(self):
        attr = attribute_costs(make_run_trace())
        jobs = {(j.assembler, j.k): j.cache for j in attr.assembly_jobs}
        assert jobs == {("ray", 25): "miss", ("ray", 31): "hit"}

    def test_format_renders_all_sections(self):
        text = format_attribution(attribute_costs(make_run_trace()))
        assert "cost attribution" in text
        assert "transcript-assembly" in text
        assert "ray_k25" in text and "miss" in text
        assert "vm-2 [workers]" in text


class TestPlannerGate:
    def test_accurate_prediction_passes(self):
        structural, gates = planner_violations(make_run_trace())
        assert structural == []
        assert all(g.ok for g in gates)
        ttc = next(g for g in gates if g.name == "ttc_s")
        # critical path total is the exact 100 s run; predicted 95.
        assert ttc.actual == pytest.approx(100.0)
        assert ttc.rel_err == pytest.approx(100.0 / 95.0 - 1.0)

    def test_blown_tolerance_flagged(self):
        structural, gates = planner_violations(
            make_run_trace(planner_ttc=50.0), ttc_rel=0.10
        )
        assert structural == []
        ttc = next(g for g in gates if g.name == "ttc_s")
        assert not ttc.ok

    def test_missing_prediction_is_structural(self):
        records = make_run_trace()
        del records[0]["attrs"]["planner_ttc_s"]
        structural, gates = planner_violations(records)
        assert structural and gates == []


def write_trace(tmp_path, records):
    path = tmp_path / "trace.jsonl"
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return str(path)


class TestCli:
    def test_ok_run_exits_zero(self, tmp_path, capsys):
        trace = write_trace(tmp_path, make_run_trace())
        assert main([trace, "--planner-gate"]) == 0
        out = capsys.readouterr().out
        assert "planner prediction gate" in out

    def test_no_billing_spans_exits_two(self, tmp_path, capsys):
        trace = write_trace(
            tmp_path, [span("pipeline", "pipeline", 0.0, 1.0, 1)]
        )
        assert main([trace]) == 2
        assert "vm.lifetime" in capsys.readouterr().err

    def test_blown_gate_exits_one(self, tmp_path):
        trace = write_trace(tmp_path, make_run_trace(planner_ttc=50.0))
        assert main([trace, "--planner-gate"]) == 1
        # loosening the tolerance clears it
        assert main([trace, "--planner-gate", "--ttc-rel", "2.0"]) == 0

    def test_json_payload(self, tmp_path, capsys):
        trace = write_trace(tmp_path, make_run_trace())
        assert main([trace, "--json", "--planner-gate"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_usd"] == pytest.approx(0.84)
        assert {v["vm_id"] for v in payload["vms"]} == {"vm-1", "vm-2"}
        assert all(g["ok"] for g in payload["planner_gate"]["gates"])

    def test_module_is_runnable(self):
        import repro.obs.attribution as mod

        assert callable(mod.main)
