"""Tests for the metrics registry."""

import pytest

from repro.obs import Counter, Gauge, Histogram, Metrics


class TestCounter:
    def test_inc(self):
        c = Counter("jobs")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("jobs").inc(-1)


class TestGauge:
    def test_set(self):
        g = Gauge("vms")
        assert g.value is None
        g.set(4)
        g.set(2)
        assert g.value == 2


class TestHistogram:
    def test_stats(self):
        h = Histogram("wait")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 6.0
        assert h.mean == 2.0
        assert h.min == 1.0
        assert h.max == 3.0

    def test_empty_stats_are_zero(self):
        h = Histogram("wait")
        assert (h.count, h.sum, h.mean, h.min, h.max) == (0, 0.0, 0.0, 0.0, 0.0)
        assert h.percentile(95) == 0.0

    def test_percentile_nearest_rank(self):
        h = Histogram("x")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(100) == 100.0
        assert h.percentile(0) == 1.0

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x").percentile(101)

    def test_stddev_population(self):
        h = Histogram("x")
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            h.observe(v)
        assert h.stddev == pytest.approx(2.0)

    def test_stddev_degenerate_cases(self):
        h = Histogram("x")
        assert h.stddev == 0.0
        h.observe(42.0)
        assert h.stddev == 0.0  # one sample has no spread
        h.observe(42.0)
        assert h.stddev == 0.0

    def test_summary_dict(self):
        h = Histogram("x")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s == {
            "count": 4,
            "sum": 10.0,
            "mean": 2.5,
            "stddev": pytest.approx(1.118033988749895),
            "min": 1.0,
            "max": 4.0,
            "p50": 2.0,
            "p95": 4.0,
        }


class TestMetrics:
    def test_get_or_create(self):
        m = Metrics()
        assert m.counter("a") is m.counter("a")
        assert m.gauge("b") is m.gauge("b")
        assert m.histogram("c") is m.histogram("c")

    def test_snapshot_shape(self):
        m = Metrics()
        m.counter("jobs").inc(3)
        m.gauge("vms").set(2)
        m.histogram("wait").observe(1.0)
        m.histogram("wait").observe(5.0)
        snap = m.snapshot()
        assert snap["counters"] == {"jobs": 3}
        assert snap["gauges"] == {"vms": 2}
        h = snap["histograms"]["wait"]
        assert h["count"] == 2
        assert h["sum"] == 6.0
        assert h["p50"] == 1.0
        assert h["p95"] == 5.0
        assert h["stddev"] == pytest.approx(2.0)

    def test_snapshot_is_sorted_and_json_ready(self):
        import json

        m = Metrics()
        m.counter("b").inc()
        m.counter("a").inc()
        snap = m.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        json.dumps(snap)  # must serialize


class TestMerge:
    def test_counter_merge_adds_delta(self):
        a, b = Counter("jobs", 3.0), Counter("jobs", 2.0)
        a.merge(b)
        assert a.value == 5.0
        assert b.value == 2.0  # source untouched

    def test_gauge_merge_keeps_latest_by_real_time(self):
        newer, older = Gauge("vms"), Gauge("vms")
        older.set(4, r_time=10.0)
        newer.set(7, r_time=20.0)
        g = Gauge("vms")
        g.set(4, r_time=10.0)
        g.merge(newer)
        assert g.value == 7 and g.updated_r == 20.0
        g2 = Gauge("vms")
        g2.set(7, r_time=20.0)
        g2.merge(older)
        assert g2.value == 7 and g2.updated_r == 20.0  # stale loses

    def test_gauge_merge_never_set_other_is_noop(self):
        g = Gauge("vms")
        g.set(3, r_time=1.0)
        g.merge(Gauge("vms"))
        assert g.value == 3

    def test_gauge_merge_into_never_set_takes_other(self):
        g = Gauge("vms")
        incoming = Gauge("vms")
        incoming.set(5, r_time=2.0)
        g.merge(incoming)
        assert g.value == 5 and g.updated_r == 2.0

    def test_histogram_merge_concatenates(self):
        a, b = Histogram("wait"), Histogram("wait")
        a.observe(1.0)
        b.observe(2.0)
        b.observe(3.0)
        a.merge(b)
        assert a.values == [1.0, 2.0, 3.0]

    def test_registry_merge_folds_deltas(self):
        parent, worker = Metrics(), Metrics()
        parent.counter("units").inc(2)
        parent.histogram("wait").observe(1.0)
        parent.gauge("k").set(25, r_time=1.0)
        worker.counter("units").inc(3)
        worker.counter("worker_only").inc()
        worker.histogram("wait").observe(9.0)
        worker.gauge("k").set(31, r_time=5.0)
        parent.merge(worker)
        assert parent.counter("units").value == 5.0
        assert parent.counter("worker_only").value == 1.0
        assert parent.histogram("wait").values == [1.0, 9.0]
        assert parent.gauge("k").value == 31

    def test_registry_merge_empty_other_is_noop(self):
        parent = Metrics()
        parent.counter("units").inc(2)
        snap = parent.snapshot()
        parent.merge(Metrics())
        assert parent.snapshot() == snap


class TestMergeEdgeCases:
    def test_empty_histogram_merge_is_noop(self):
        a, b = Histogram("wait"), Histogram("wait")
        a.observe(1.0)
        a.merge(b)
        assert a.values == [1.0]
        b.merge(Histogram("wait"))
        assert b.values == []
        assert b.summary()["count"] == 0

    def test_gauge_tie_at_equal_real_time_incoming_wins(self):
        mine, incoming = Gauge("k"), Gauge("k")
        mine.set(25, r_time=5.0)
        incoming.set(31, r_time=5.0)
        mine.merge(incoming)
        # exact tie: the incoming side is "the newer registry"
        assert mine.value == 31

    def test_counter_folding_across_repeated_merges(self):
        parent = Metrics()
        for round_total in (2.0, 2.0, 2.0):
            worker = Metrics()
            worker.counter("chunks").inc(round_total)
            parent.merge(worker)
        assert parent.counter("chunks").value == 6.0

    def test_on_delta_reports_folded_quantities(self):
        parent, worker = Metrics(), Metrics()
        parent.gauge("k").set(31, r_time=9.0)
        worker.counter("chunks").inc(3)
        worker.gauge("k").set(25, r_time=1.0)  # stale: loses, no delta
        worker.histogram("wait").observe(1.0)
        worker.histogram("wait").observe(2.0)
        deltas = []
        parent.merge(
            worker, on_delta=lambda kind, name, v: deltas.append((kind, name, v))
        )
        assert ("counter", "chunks", 3.0) in deltas
        assert ("histogram", "wait", 1.0) in deltas
        assert ("histogram", "wait", 2.0) in deltas
        assert not any(kind == "gauge" for kind, _, _ in deltas)

    def test_on_delta_skips_zero_counters_and_empty_histograms(self):
        parent, worker = Metrics(), Metrics()
        worker.counter("zero")  # created, never incremented
        worker.histogram("empty")
        deltas = []
        parent.merge(
            worker, on_delta=lambda *args: deltas.append(args)
        )
        assert deltas == []
