"""Tests for cross-process span context, worker buffering and merging."""

import pickle
import time

from repro.obs import (
    BufferingTracer,
    NullTracer,
    SpanContext,
    Tracer,
    WorkerTrace,
    get_tracer,
    merge_worker_trace,
    set_thread_tracer,
    worker_track,
)
from repro.parallel.executor import run_workload
from repro.parallel.usage import ResourceUsage


def simple_work():
    tracer = get_tracer()
    with tracer.span("inner", category="workload"):
        tracer.event("tick", category="workload")
        tracer.count("work_done")
        tracer.gauge("last_k", 31)
        tracer.observe("chunk_bytes", 128.0)
    return "ok", ResourceUsage()


class TestSpanContext:
    def test_capture_disabled_tracer_returns_none(self):
        assert SpanContext.capture(NullTracer()) is None

    def test_capture_records_handshake(self):
        before_wall, before_perf = time.time(), time.perf_counter()
        ctx = SpanContext.capture(
            Tracer(), parent_span_id=7, process="P", thread="u1"
        )
        assert ctx.parent_span_id == 7
        assert ctx.process == "P" and ctx.thread == "u1"
        assert ctx.parent_wall >= before_wall
        assert ctx.parent_perf >= before_perf

    def test_picklable(self):
        ctx = SpanContext.capture(Tracer(), parent_span_id=3)
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone == ctx


class TestBufferingTracer:
    def test_top_level_spans_carry_resource_endpoint_attrs(self):
        buf = BufferingTracer()
        with buf.span("work", category="workload"):
            pass
        buf.close()
        (span,) = buf.spans
        assert span.attrs["rss_bytes"] > 0
        assert span.attrs["cpu_seconds"] >= 0
        assert "rss_delta_bytes" in span.attrs

    def test_nested_spans_skip_endpoint_sampling(self):
        buf = BufferingTracer()
        with buf.span("work", category="workload"):
            with buf.span("inner"):
                pass
        buf.close()
        inner = next(s for s in buf.spans if s.name == "inner")
        outer = next(s for s in buf.spans if s.name == "work")
        assert "rss_bytes" not in inner.attrs
        assert "rss_bytes" in outer.attrs

    def test_endpoint_samples_always_present(self):
        buf = BufferingTracer(cadence=0.0)
        buf.close()
        samples = [e for e in buf.events if e.category == "resource"]
        assert len(samples) == 2  # open + close, even with no cadence
        assert all(e.attrs["rss_bytes"] > 0 for e in samples)

    def test_cadence_thread_samples_and_stops(self):
        buf = BufferingTracer(cadence=0.005)
        time.sleep(0.05)
        buf.close()
        samples = [e for e in buf.events if e.category == "resource"]
        assert len(samples) > 2
        n = len(buf.events)
        time.sleep(0.02)
        assert len(buf.events) == n  # sampler really stopped

    def test_worker_trace_roundtrips_through_pickle(self):
        buf = BufferingTracer()
        with buf.span("work"):
            buf.count("c")
        buf.close()
        trace = pickle.loads(pickle.dumps(buf.to_worker_trace()))
        assert isinstance(trace, WorkerTrace)
        assert [s.name for s in trace.spans] == ["work"]
        assert trace.metrics.counters["c"].value == 1.0
        assert trace.pid == buf.pid


class TestThreadLocalOverride:
    def test_override_scopes_to_installer(self):
        buf = BufferingTracer()
        previous = set_thread_tracer(buf)
        try:
            assert get_tracer() is buf
        finally:
            set_thread_tracer(previous)
        assert get_tracer() is not buf

    def test_set_returns_previous(self):
        a, b = BufferingTracer(), BufferingTracer()
        assert set_thread_tracer(a) is None
        assert set_thread_tracer(b) is a
        assert set_thread_tracer(None) is b


class TestRunWorkloadWithContext:
    def test_buffers_and_ships_worker_trace(self):
        parent = Tracer()
        ctx = SpanContext.capture(parent, parent_span_id=1, thread="u1")
        result, usage, wall, trace = run_workload(simple_work, ctx)
        assert result == "ok"
        assert trace is not None
        names = [s.name for s in trace.spans]
        assert "workload" in names and "inner" in names
        assert trace.metrics.counters["work_done"].value == 1.0
        # nothing leaked into the parent: everything was buffered
        assert parent.spans == [] and parent.events == []
        assert get_tracer().enabled is False  # override removed

    def test_no_context_means_no_buffering(self):
        *_, trace = run_workload(simple_work)
        assert trace is None


class TestMerge:
    def run_and_merge(self, parent=None, **capture_kwargs):
        parent = parent or Tracer()
        with parent.span("dispatch", category="agent", process="P_B",
                         thread="u1") as dispatch:
            ctx = SpanContext.capture(
                parent,
                parent_span_id=dispatch.span_id,
                process="P_B",
                thread="u1",
                **capture_kwargs,
            )
        *_, trace = run_workload(simple_work, ctx)
        merged = merge_worker_trace(parent, trace, ctx)
        return parent, trace, merged

    def test_records_land_on_per_pid_track(self):
        parent, trace, merged = self.run_and_merge()
        track = worker_track(trace.pid)
        worker_spans = [s for s in parent.spans if s.process == track]
        worker_events = [e for e in parent.events if e.process == track]
        assert {s.name for s in worker_spans} == {"workload", "inner"}
        assert any(e.name == "tick" for e in worker_events)
        assert merged == len(worker_spans) + len(worker_events)

    def test_reparenting_under_dispatch_span(self):
        parent, trace, _ = self.run_and_merge()
        dispatch = next(s for s in parent.spans if s.name == "dispatch")
        root = next(s for s in parent.spans if s.name == "workload")
        inner = next(s for s in parent.spans if s.name == "inner")
        assert root.parent_id == dispatch.span_id
        assert inner.parent_id == root.span_id

    def test_span_ids_reissued_without_collision(self):
        parent, _, _ = self.run_and_merge()
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))

    def test_real_timestamps_aligned_into_parent_domain(self):
        parent = Tracer()
        r_before = time.perf_counter()
        parent_, _, _ = self.run_and_merge(parent)
        r_after = time.perf_counter()
        for s in parent.spans:
            assert r_before - 0.05 <= s.r_start <= s.r_end <= r_after + 0.05

    def test_worker_thread_track_takes_unit_id(self):
        parent, trace, _ = self.run_and_merge()
        worker_spans = [
            s for s in parent.spans if s.process == worker_track(trace.pid)
        ]
        assert {s.thread for s in worker_spans} == {"u1"}

    def test_metric_deltas_folded(self):
        parent = Tracer()
        parent.count("work_done", 2)  # pre-existing parent count
        parent, _, _ = self.run_and_merge(parent)
        assert parent.metrics.counters["work_done"].value == 3.0
        assert parent.metrics.gauges["last_k"].value == 31
        assert parent.metrics.histograms["chunk_bytes"].values == [128.0]

    def test_merge_is_noop_for_missing_pieces(self):
        parent = Tracer()
        ctx = SpanContext.capture(parent)
        assert merge_worker_trace(parent, None, ctx) == 0
        buf = BufferingTracer()
        buf.close()
        assert merge_worker_trace(parent, buf.to_worker_trace(), None) == 0
        assert merge_worker_trace(NullTracer(), buf.to_worker_trace(), ctx) == 0

    def test_virtual_times_stay_unbound(self):
        parent, trace, _ = self.run_and_merge()
        for s in parent.spans:
            if s.process == worker_track(trace.pid):
                assert s.v_start is None and s.v_end is None


class TestOffsetMath:
    def test_offset_compensates_different_perf_epochs(self):
        # Simulate a worker whose perf_counter epoch differs by +1000 s.
        ctx = SpanContext(
            parent_span_id=None, parent_wall=100.0, parent_perf=50.0
        )
        trace = WorkerTrace(
            pid=1, worker_wall=100.0, worker_perf=1050.0
        )
        # worker perf 1051.0 == wall 101.0 == parent perf 51.0
        assert trace.r_offset(ctx) == -1000.0
