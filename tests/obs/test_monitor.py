"""The live run monitor (repro.obs.monitor): live == post-hoc."""

import json
import threading
import time

from repro.obs.monitor import (
    RunState,
    final_summary,
    follow,
    main,
    progress_line,
    replay,
)


def span(name, cat, v0=0.0, v1=0.0, r0=0.0, r1=0.0, parent=None,
         process="main", **attrs):
    return {
        "type": "span", "name": name, "cat": cat, "process": process,
        "thread": "t", "v0": v0, "v1": v1, "r0": r0, "r1": r1,
        "id": 1, "parent": parent, "attrs": attrs,
    }


def event(name, cat, r=0.0, thread="t", **attrs):
    return {
        "type": "event", "name": name, "cat": cat, "process": "main",
        "thread": thread, "v": 0.0, "r": r, "attrs": attrs,
    }


def unit_state(unit_id, unit, stage, new, r=0.0):
    return event(
        "unit.state", "state", r=r, thread=unit_id,
        old="?", new=new, unit=unit, stage=stage,
    )


def sample_run():
    """A small but complete synthetic run: 3 units over 2 stages, one
    failure, heartbeats, an alert, billing and a planner prediction."""
    return [
        event("planner.prediction", "planner", r=0.0, ttc_s=500.0,
              cost_usd=0.84, assembly_jobs=2),
        unit_state("unit.1", "preprocess", "pre-processing", "RUNNING", r=1.0),
        unit_state("unit.1", "preprocess", "pre-processing", "DONE", r=2.0),
        span("pre-processing", "stage", v0=0.0, v1=22.0, r0=0.5, r1=2.0,
             stage="pre-processing"),
        unit_state("unit.2", "ray_k35", "transcript-assembly", "RUNNING",
                   r=2.5),
        unit_state("unit.3", "ray_k41", "transcript-assembly", "RUNNING",
                   r=2.5),
        event("unit.heartbeat", "heartbeat", r=3.0, thread="unit.2",
              unit="ray_k35", stage="transcript-assembly", elapsed_r=0.5,
              inflight=2),
        event("alert", "alert", r=3.5, rule="straggler", severity="warning",
              message="unit ray_k41 is straggling: 9.0 s vs peer median 1.0 s",
              unit="ray_k41"),
        unit_state("unit.2", "ray_k35", "transcript-assembly", "DONE", r=4.0),
        unit_state("unit.3", "ray_k41", "transcript-assembly", "FAILED",
                   r=4.5),
        span("transcript-assembly", "stage", v0=22.0, v1=40.0, r0=2.4,
             r1=4.5, stage="transcript-assembly"),
        span("workload", "worker", v0=None, v1=None, r0=2.6, r1=3.9,
             process="worker-123"),
        span("vm.lifetime", "cloud", v0=0.0, v1=40.0, r0=4.6, r1=4.6,
             cost_usd=0.42),
        span("pipeline", "pipeline", v0=0.0, v1=535.9, r0=0.0, r1=5.0,
             dataset="tiny"),
    ]


class TestRunState:
    def test_unit_counts_and_stage_progress(self):
        state = replay(sample_run())
        assert state.unit_counts() == (2, 1, 0)
        progress = state.stage_progress()
        assert progress["pre-processing"] == {
            "done": 1, "failed": 0, "running": 0, "total": 1,
        }
        assert progress["transcript-assembly"] == {
            "done": 1, "failed": 1, "running": 0, "total": 2,
        }

    def test_complete_flag_tracks_pipeline_close(self):
        records = sample_run()
        state = replay(records[:-1])
        assert not state.complete
        state.apply(records[-1])
        assert state.complete

    def test_billing_planner_alerts_collected(self):
        state = replay(sample_run())
        assert state.billed_usd == 0.42
        assert state.planner["cost_usd"] == 0.84
        assert len(state.alerts) == 1
        assert state.workers["worker-123"]["workloads"] == 1

    def test_eta_from_planner_and_throughput(self):
        state = RunState()
        for record in sample_run():
            state.apply(record)
            if record.get("name") == "unit.heartbeat":
                break
        # 1 done in ~3 real seconds, 2 running, planner says 2 jobs
        eta = state.eta_seconds()
        assert eta is not None and eta > 0


class TestRendering:
    def test_final_summary_contents(self):
        text = final_summary(replay(sample_run()))
        assert "COMPLETE" in text
        assert "TTC 535.9 virtual s" in text
        assert "2 done, 1 failed" in text
        assert "transcript-assembly" in text
        assert "[warning ] straggler" in text
        assert "predicted TTC 500.0 s" in text
        assert "billed $0.42" in text

    def test_final_summary_in_progress(self):
        text = final_summary(replay(sample_run()[:-1]))
        assert "IN PROGRESS" in text

    def test_progress_line_mentions_running_units(self):
        records = sample_run()
        state = replay(records[: records.index(records[8])])
        line = progress_line(state)
        assert "1 done / 2 running" in line
        assert "ray_k35" in line

    def test_span_open_and_metric_records_do_not_change_final_state(self):
        """The parity guarantee: the extra record types only the live
        stream carries must not affect the final rendering."""
        enriched = list(sample_run())
        enriched.insert(
            0,
            {"type": "span_open", "name": "pipeline", "cat": "pipeline",
             "process": "main", "thread": "main", "v": 0.0, "r": 0.0,
             "id": 99, "parent": None, "attrs": {}},
        )
        enriched.insert(
            3,
            {"type": "metric", "kind": "counter", "name": "units_done",
             "value": 1, "r": 2.0},
        )
        assert final_summary(replay(enriched)) == final_summary(
            replay(sample_run())
        )


class TestFollow:
    def _write_slowly(self, path, records, delay=0.02):
        def writer():
            with path.open("w") as fh:
                for record in records:
                    fh.write(json.dumps(record) + "\n")
                    fh.flush()
                    time.sleep(delay)

        thread = threading.Thread(target=writer)
        thread.start()
        return thread

    def test_follow_reaches_complete_and_matches_posthoc(self, tmp_path, capsys):
        path = tmp_path / "live.jsonl"
        records = sample_run()
        writer = self._write_slowly(path, records)
        rc = follow(path, poll=0.01, timeout=30.0)
        writer.join()
        assert rc == 0
        followed = capsys.readouterr().out
        assert "== final state ==" in followed
        # the trailing block equals the post-hoc rendering byte-for-byte
        final = followed[followed.index("== final state =="):].rstrip("\n")
        assert final == final_summary(replay(records))

    def test_follow_tolerates_torn_lines(self, tmp_path, capsys):
        path = tmp_path / "live.jsonl"
        records = sample_run()
        with path.open("w") as fh:
            for record in records[:-1]:
                fh.write(json.dumps(record) + "\n")
            # a torn final line: written in two chunks mid-poll
            line = json.dumps(records[-1])
            fh.write(line[: len(line) // 2])
            fh.flush()

            def finish():
                time.sleep(0.1)
                with path.open("a") as fh2:
                    fh2.write(line[len(line) // 2:] + "\n")

            thread = threading.Thread(target=finish)
            thread.start()
        rc = follow(path, poll=0.01, timeout=30.0)
        thread.join()
        assert rc == 0
        assert "COMPLETE" in capsys.readouterr().out

    def test_follow_times_out_without_completion(self, tmp_path, capsys):
        path = tmp_path / "live.jsonl"
        path.write_text(
            "\n".join(json.dumps(r) for r in sample_run()[:-1]) + "\n"
        )
        rc = follow(path, poll=0.01, timeout=0.2)
        assert rc == 1
        out = capsys.readouterr().out
        assert "timeout" in out
        assert "IN PROGRESS" in out


class TestCli:
    def test_posthoc_render(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(json.dumps(r) for r in sample_run()) + "\n"
        )
        assert main([str(path)]) == 0
        assert "COMPLETE" in capsys.readouterr().out

    def test_missing_trace_is_exit_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace" in capsys.readouterr().err
