"""Streaming sinks, heartbeats and straggler detection (repro.obs.live)."""

import json
import threading
import time

import pytest

from repro.obs import NullTracer, Tracer
from repro.obs.context import (
    BufferingTracer,
    SpanContext,
    merge_worker_trace,
)
from repro.obs.live import (
    CollectorSink,
    HeartbeatMonitor,
    InflightUnit,
    JsonlStreamSink,
    StragglerDetector,
)
from repro.obs.tracer import TraceSink


class TestSinkProtocol:
    def test_span_open_and_close_stream(self):
        tracer = Tracer()
        sink = tracer.add_sink(CollectorSink())
        with tracer.span("work", category="unit", shard=3):
            pass
        types = [r["type"] for r in sink.records]
        assert types == ["span_open", "span"]
        opened, closed = sink.records
        assert opened["name"] == closed["name"] == "work"
        assert opened["id"] == closed["id"]
        assert opened["attrs"]["shard"] == 3
        assert closed["r1"] >= closed["r0"]

    def test_events_and_metric_deltas_stream(self):
        tracer = Tracer()
        sink = tracer.add_sink(CollectorSink())
        tracer.event("tick", category="test", n=1)
        tracer.count("widgets", 2)
        tracer.gauge("depth", 7.0)
        tracer.observe("sizes", 11.0)
        kinds = [(r["type"], r.get("kind")) for r in sink.records]
        assert kinds == [
            ("event", None),
            ("metric", "counter"),
            ("metric", "gauge"),
            ("metric", "histogram"),
        ]
        assert sink.records[1]["name"] == "widgets"
        assert sink.records[1]["value"] == 2

    def test_no_sink_records_nothing_extra(self):
        tracer = Tracer()
        with tracer.span("work"):
            tracer.count("widgets")
        # no sinks: the archival record stores are the only artifacts
        assert len(tracer.spans) == 1

    def test_raising_sink_is_detached_not_fatal(self):
        class Boom(TraceSink):
            def emit(self, record):
                raise RuntimeError("sink died")

        tracer = Tracer()
        boom = tracer.add_sink(Boom())
        survivor = tracer.add_sink(CollectorSink())
        tracer.event("tick")
        tracer.event("tock")
        assert boom not in tracer._sinks
        assert [r["name"] for r in survivor.records] == ["tick", "tock"]

    def test_null_tracer_add_sink_is_inert(self):
        tracer = NullTracer()
        sink = tracer.add_sink(CollectorSink())
        with tracer.span("work"):
            tracer.count("widgets")
        assert sink.records == []

    def test_close_sinks_closes_and_clears(self):
        closed = []

        class Closing(TraceSink):
            def emit(self, record):
                pass

            def close(self):
                closed.append(self)

        tracer = Tracer()
        tracer.add_sink(Closing())
        tracer.add_sink(Closing())
        tracer.close_sinks()
        assert len(closed) == 2
        assert tracer._sinks == []

    def test_merged_worker_records_stream(self):
        parent = Tracer()
        sink = parent.add_sink(CollectorSink())
        context = SpanContext.capture(parent, thread="w0")
        worker = BufferingTracer()
        with worker.span("chunk", category="worker"):
            worker.count("chunks")
        merge_worker_trace(parent, worker.to_worker_trace(), context)
        names = [
            r["name"] for r in sink.records if r["type"] == "span"
        ]
        assert "chunk" in names
        deltas = [
            r
            for r in sink.records
            if r["type"] == "metric" and r["name"] == "chunks"
        ]
        assert deltas and deltas[-1]["value"] == 1


class TestJsonlStreamSink:
    def test_lines_parse_incrementally_and_snapshot_on_close(self, tmp_path):
        tracer = Tracer()
        path = tmp_path / "live.jsonl"
        sink = tracer.add_sink(JsonlStreamSink(path, tracer=tracer))
        with tracer.span("work", category="unit"):
            tracer.count("widgets")
        # flushed per line: parseable before close
        lines = path.read_text().splitlines()
        assert [json.loads(line)["type"] for line in lines] == [
            "span_open",
            "metric",
            "span",
        ]
        sink.close()
        final = json.loads(path.read_text().splitlines()[-1])
        assert final["type"] == "metrics"
        assert final["data"]["counters"]["widgets"] == 1

    def test_emit_after_close_is_ignored(self, tmp_path):
        sink = JsonlStreamSink(tmp_path / "live.jsonl")
        sink.close()
        sink.emit({"type": "event", "name": "late"})  # must not raise
        sink.close()  # idempotent


class TestStragglerDetector:
    def test_needs_min_peers(self):
        det = StragglerDetector(min_peers=3)
        det.note_completion(1.0)
        det.note_completion(1.0)
        assert det.threshold() is None
        assert det.check("u", 100.0) is None
        det.note_completion(1.0)
        assert det.threshold() is not None

    def test_threshold_is_median_mad_with_ratio_floor(self):
        det = StragglerDetector(k=3.0, min_peers=3, min_ratio=1.75)
        for wall in (1.0, 1.0, 1.0):
            det.note_completion(wall)
        # MAD is 0: the ratio floor keeps the cutoff off the median
        assert det.threshold() == pytest.approx(1.75)
        det2 = StragglerDetector(k=3.0, min_peers=3, min_ratio=1.0)
        for wall in (1.0, 2.0, 9.0):
            det2.note_completion(wall)
        # median 2, MAD 1 -> 2 + 3*1 = 5 > min_ratio*median
        assert det2.threshold() == pytest.approx(5.0)

    def test_flags_once_per_unit(self):
        det = StragglerDetector(min_peers=3)
        for wall in (1.0, 1.0, 1.2):
            det.note_completion(wall)
        evidence = det.check("slow", 10.0)
        assert evidence is not None
        assert evidence["unit"] == "slow"
        assert evidence["elapsed_r"] == 10.0
        assert evidence["peers"] == 3
        assert det.check("slow", 20.0) is None  # already flagged
        assert det.check("fine", 0.5) is None

    def test_rejects_degenerate_min_peers(self):
        with pytest.raises(ValueError):
            StragglerDetector(min_peers=1)


class TestHeartbeatMonitor:
    def _unit(self, name="ray_k35", elapsed_ago=0.5):
        return InflightUnit(
            unit_id="unit.000001",
            name=name,
            stage="transcript-assembly",
            submitted_r=time.perf_counter() - elapsed_ago,
            attrs={"backend": "process"},
        )

    def test_beat_emits_one_event_per_unit(self):
        tracer = Tracer()
        monitor = HeartbeatMonitor(
            tracer, cadence=10.0, inflight=lambda: [self._unit()],
            process="pilot.0001",
        )
        monitor.beat()
        beats = [e for e in tracer.events if e.name == "unit.heartbeat"]
        assert len(beats) == 1
        beat = beats[0]
        assert beat.category == "heartbeat"
        assert beat.process == "pilot.0001"
        assert beat.attrs["unit"] == "ray_k35"
        assert beat.attrs["stage"] == "transcript-assembly"
        assert beat.attrs["backend"] == "process"
        assert beat.attrs["elapsed_r"] >= 0.5
        assert beat.attrs["inflight"] == 1

    def test_straggler_event_from_detector(self):
        tracer = Tracer()
        detector = StragglerDetector(min_peers=3)
        for wall in (0.01, 0.01, 0.012):
            detector.note_completion(wall)
        monitor = HeartbeatMonitor(
            tracer,
            cadence=10.0,
            inflight=lambda: [self._unit(elapsed_ago=5.0)],
            detector=detector,
        )
        monitor.beat()
        monitor.beat()  # verdict must not repeat
        stragglers = [
            e for e in tracer.events if e.name == "unit.straggler"
        ]
        assert len(stragglers) == 1
        attrs = stragglers[0].attrs
        assert attrs["severity"] == "warning"
        assert attrs["unit"] == "ray_k35"
        assert attrs["elapsed_r"] > attrs["threshold_r"]

    def test_thread_beats_and_stop_is_idempotent(self):
        tracer = Tracer()
        monitor = HeartbeatMonitor(
            tracer, cadence=0.01, inflight=lambda: [self._unit()]
        )
        monitor.start()
        monitor.start()  # no second thread
        deadline = time.time() + 5.0
        while monitor.beats < 3 and time.time() < deadline:
            time.sleep(0.01)
        monitor.stop()
        monitor.stop()
        assert monitor.beats >= 3
        # restartable after stop (the pilot agent's submit/collect cycle)
        monitor.start()
        assert monitor._thread is not None
        monitor.stop()

    def test_rejects_nonpositive_cadence(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor(Tracer(), cadence=0.0, inflight=list)

    def test_heartbeats_never_touch_virtual_clock(self):
        class FakeClock:
            now = 42.0

        tracer = Tracer(clock=FakeClock())
        monitor = HeartbeatMonitor(
            tracer, cadence=10.0, inflight=lambda: [self._unit()]
        )
        monitor.beat()
        assert tracer.clock.now == 42.0
        beat = next(e for e in tracer.events if e.name == "unit.heartbeat")
        assert beat.v_time == 42.0  # stamped, never advanced


class TestConcurrentEmission:
    def test_sink_sees_all_records_across_threads(self):
        tracer = Tracer()
        sink = tracer.add_sink(CollectorSink())
        n, workers = 200, 4

        def hammer(tid):
            for i in range(n):
                tracer.event("tick", thread=f"t{tid}", i=i)

        threads = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = [r for r in sink.records if r["type"] == "event"]
        assert len(events) == n * workers
