"""Unit tests for the workload-execution backends."""

import time

import pytest

from repro.parallel.executor import (
    EXECUTOR_BACKENDS,
    ExecutorError,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkloadExecutor,
    WorkloadOutcome,
    make_executor,
    run_workload,
)
from repro.parallel.usage import PhaseUsage, ResourceUsage


def tiny_usage(compute=1e5):
    u = ResourceUsage(n_ranks=1)
    u.add_phase(
        PhaseUsage("w", "generic", critical_compute=compute, total_compute=compute)
    )
    return u


def ok_work():
    return 42, tiny_usage()


def slow_work():
    time.sleep(0.02)
    return "slow", tiny_usage()


def bad_work():
    raise RuntimeError("kaput")


class TestFactory:
    def test_names_resolve(self):
        for name, cls in EXECUTOR_BACKENDS.items():
            ex = make_executor(name)
            assert isinstance(ex, cls)
            assert ex.name == name
            ex.shutdown()

    def test_instance_passthrough(self):
        ex = SerialExecutor()
        assert make_executor(ex) is ex

    def test_unknown_name_rejected(self):
        with pytest.raises(ExecutorError):
            make_executor("gpu")
        with pytest.raises(ExecutorError):
            make_executor(None)

    def test_max_workers_forwarded(self):
        ex = make_executor("thread", max_workers=3)
        assert ex.max_workers == 3
        ex.shutdown()


class TestRunWorkload:
    def test_times_the_call(self):
        result, usage, wall, worker_trace = run_workload(slow_work)
        assert result == "slow"
        assert usage.phases
        assert wall >= 0.02
        assert worker_trace is None  # no context, no buffering


class TestSerial:
    def test_runs_inline(self):
        out = SerialExecutor().submit(ok_work).outcome()
        assert out.ok
        assert out.result == 42
        assert out.usage is not None
        assert out.wall_seconds >= 0

    def test_error_captured_not_raised(self):
        out = SerialExecutor().submit(bad_work).outcome()
        assert not out.ok
        assert "kaput" in str(out.error)
        assert out.result is None


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestPoolBackends:
    def test_outcomes_in_submission_order(self, backend):
        with make_executor(backend, max_workers=2) as ex:
            handles = [ex.submit(ok_work) for _ in range(4)]
            outs = [h.outcome() for h in handles]
        assert all(o.ok for o in outs)
        assert [o.result for o in outs] == [42] * 4
        assert all(o.wall_seconds >= 0 for o in outs)

    def test_error_captured_not_raised(self, backend):
        with make_executor(backend, max_workers=2) as ex:
            out = ex.submit(bad_work).outcome()
        assert not out.ok
        assert "kaput" in str(out.error)

    def test_shutdown_idempotent(self, backend):
        ex = make_executor(backend)
        ex.submit(ok_work).outcome()
        ex.shutdown()
        ex.shutdown()

    def test_pool_recreated_after_shutdown(self, backend):
        ex = make_executor(backend)
        ex.submit(ok_work).outcome()
        ex.shutdown()
        out = ex.submit(ok_work).outcome()
        assert out.ok
        ex.shutdown()


class TestProcessSpecifics:
    def test_unpicklable_workload_fails_gracefully(self):
        secret = object()

        def closure():
            return secret, tiny_usage()

        with ProcessExecutor(max_workers=1) as ex:
            out = ex.submit(closure).outcome()
        # A closure cannot be pickled to the worker: the error must come
        # back in the outcome, never as an exception from submit/outcome.
        assert not out.ok

    def test_lazy_pool_creation(self):
        ex = ProcessExecutor()
        assert ex._pool is None
        ex.shutdown()  # shutdown before first submit is a no-op
        assert ex._pool is None


class TestOutcome:
    def test_ok_flag(self):
        assert WorkloadOutcome(result=1).ok
        assert not WorkloadOutcome(error=RuntimeError("x")).ok

    def test_abstract_interface(self):
        with pytest.raises(TypeError):
            WorkloadExecutor()
