"""Tests for the cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.costmodel import (
    CostModel,
    MachineConfig,
    fits_in_memory,
)
from repro.parallel.usage import PhaseUsage, ResourceUsage


def usage_with(n_ranks=8, **phase_kw):
    u = ResourceUsage(n_ranks=n_ranks)
    defaults = dict(name="p", kind="generic")
    defaults.update(phase_kw)
    u.add_phase(PhaseUsage(**defaults))
    return u


class TestMachineConfig:
    def test_total_cores(self):
        assert MachineConfig(n_nodes=4, cores_per_node=8).total_cores == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(n_nodes=0)
        with pytest.raises(ValueError):
            MachineConfig(n_nodes=1, compute_factor=0)


class TestTaskSeconds:
    def test_compute_only(self):
        cm = CostModel(rates={"generic": 100.0})
        m = MachineConfig(n_nodes=1, cores_per_node=8)
        u = usage_with(n_ranks=8, critical_compute=1000.0)
        assert cm.task_seconds(u, m) == pytest.approx(10.0)

    def test_compute_factor_speeds_up(self):
        cm = CostModel(rates={"generic": 100.0})
        slow = MachineConfig(n_nodes=1, compute_factor=1.0)
        fast = MachineConfig(n_nodes=1, compute_factor=2.0)
        u = usage_with(critical_compute=1000.0)
        assert cm.task_seconds(u, fast) == pytest.approx(
            cm.task_seconds(u, slow) / 2
        )

    def test_oversubscription_slows_down(self):
        cm = CostModel(rates={"generic": 100.0})
        m = MachineConfig(n_nodes=1, cores_per_node=4)
        u = usage_with(n_ranks=8, critical_compute=100.0)  # 8 ranks on 4 cores
        assert cm.task_seconds(u, m) == pytest.approx(2.0)

    def test_serial_not_parallelized(self):
        cm = CostModel(rates={"generic": 100.0})
        m1 = MachineConfig(n_nodes=1)
        m8 = MachineConfig(n_nodes=8)
        u = usage_with(serial_compute=1000.0, critical_compute=0.0)
        assert cm.task_seconds(u, m1) == pytest.approx(cm.task_seconds(u, m8))

    def test_single_node_comm_is_free(self):
        cm = CostModel()
        m = MachineConfig(n_nodes=1)
        u = usage_with(comm_bytes=10**9)
        assert cm.task_seconds(u, m) == 0.0

    def test_multi_node_comm_priced(self):
        cm = CostModel()
        m = MachineConfig(n_nodes=2, network_bandwidth=1e6)
        u = usage_with(comm_bytes=10**6)
        # half the traffic crosses the network, over 2 node-links
        assert cm.task_seconds(u, m) == pytest.approx(0.25)

    def test_collective_latency_grows_with_ranks(self):
        cm = CostModel()
        m = MachineConfig(n_nodes=2)
        small = usage_with(n_ranks=2, n_collectives=10)
        big = usage_with(n_ranks=64, n_collectives=10)
        assert cm.task_seconds(big, m) > cm.task_seconds(small, m)

    def test_mr_job_overhead(self):
        cm = CostModel(mr_job_overhead=65.0)
        m = MachineConfig(n_nodes=2)
        u = usage_with(n_jobs=10)
        assert cm.task_seconds(u, m) == pytest.approx(650.0)

    def test_unknown_kind_falls_back_to_generic(self):
        cm = CostModel(rates={"generic": 10.0})
        m = MachineConfig(n_nodes=1)
        u = usage_with(kind="exotic", critical_compute=100.0)
        assert cm.task_seconds(u, m) == pytest.approx(10.0)

    def test_with_rates_override(self):
        cm = CostModel().with_rates(kmer=123.0)
        assert cm.rate("kmer") == 123.0
        assert cm.rate("graph") == CostModel().rate("graph")

    def test_message_latency(self):
        cm = CostModel(message_latency=0.01)
        m = MachineConfig(n_nodes=2)
        u = usage_with(n_messages=100)
        assert cm.task_seconds(u, m) == pytest.approx(1.0)

    @settings(max_examples=25, deadline=None)
    @given(
        nodes=st.integers(min_value=1, max_value=32),
        compute=st.floats(min_value=0, max_value=1e9),
    )
    def test_nonnegative_and_finite(self, nodes, compute):
        cm = CostModel()
        m = MachineConfig(n_nodes=nodes)
        u = usage_with(n_ranks=nodes * 8, critical_compute=compute,
                       comm_bytes=10**6, n_collectives=5)
        t = cm.task_seconds(u, m)
        assert t >= 0
        assert t < float("inf")


class TestHelpers:
    def test_io_seconds(self):
        cm = CostModel()
        m = MachineConfig(n_nodes=2, io_bandwidth=1e6)
        assert cm.io_seconds(4 * 10**6, m) == pytest.approx(2.0)

    def test_transfer_seconds(self):
        cm = CostModel()
        assert cm.transfer_seconds(10**6, 10**5) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            cm.transfer_seconds(1, 0)

    def test_fits_in_memory(self):
        u = ResourceUsage(n_ranks=8)
        u.peak_rank_memory_bytes = 2 * 1024**3  # 2 GB per rank
        # 8 ranks/node x 2 GB = 16 GB: just fits a 16 GB node
        assert fits_in_memory(u, 16 * 1024**3, cores_per_node=8)
        assert not fits_in_memory(u, 15 * 1024**3, cores_per_node=8)

    def test_fits_fewer_ranks_than_cores(self):
        u = ResourceUsage(n_ranks=2)
        u.peak_rank_memory_bytes = 7 * 1024**3
        # only 2 ranks exist, so a 16 GB node holds both
        assert fits_in_memory(u, 16 * 1024**3, cores_per_node=8)
