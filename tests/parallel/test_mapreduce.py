"""Tests for the MapReduce engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.mapreduce import MapReduceEngine, MRJob


def wordcount_mapper(_key, line):
    for word in line.split():
        yield word, 1


def sum_reducer(key, values):
    yield key, sum(values)


WORDCOUNT = MRJob("wordcount", wordcount_mapper, sum_reducer)
WORDCOUNT_COMBINED = MRJob("wordcount", wordcount_mapper, sum_reducer,
                           combiner=sum_reducer)


class TestEngine:
    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            MapReduceEngine(0)

    def test_wordcount(self):
        eng = MapReduceEngine(3)
        out = eng.run(WORDCOUNT, [(i, "a b a") for i in range(4)])
        assert dict(out) == {"a": 8, "b": 4}

    def test_combiner_same_result_fewer_shuffle_bytes(self):
        records = [(i, "x y x x") for i in range(50)]
        plain = MapReduceEngine(4)
        combined = MapReduceEngine(4)
        out1 = plain.run(WORDCOUNT, records)
        out2 = combined.run(WORDCOUNT_COMBINED, records)
        assert dict(out1) == dict(out2)
        assert combined.job_stats[0].shuffle_bytes < plain.job_stats[0].shuffle_bytes

    def test_worker_count_does_not_change_result(self):
        records = [(i, f"w{i % 7} w{i % 3}") for i in range(60)]
        results = [
            dict(MapReduceEngine(n).run(WORDCOUNT, records)) for n in (1, 2, 5, 16)
        ]
        assert all(r == results[0] for r in results)

    def test_stats_recorded(self):
        eng = MapReduceEngine(2)
        eng.run(WORDCOUNT, [(0, "a b"), (1, "c")])
        s = eng.job_stats[0]
        assert s.map_input_records == 2
        assert s.map_output_records == 3
        assert s.reduce_input_groups == 3
        assert s.reduce_output_records == 3
        assert s.shuffle_bytes > 0

    def test_usage_phases_one_per_job(self):
        eng = MapReduceEngine(2)
        eng.run(WORDCOUNT, [(0, "a")])
        eng.run(WORDCOUNT, [(0, "b")])
        u = eng.usage
        assert len(u.phases) == 2
        assert all(p.kind == "mr_job" for p in u.phases)
        assert u.n_jobs == 2

    def test_chain(self):
        # Round 1: count words; round 2: bucket counts by parity.
        def parity_mapper(word, count):
            yield count % 2, 1

        job2 = MRJob("parity", parity_mapper, sum_reducer)
        eng = MapReduceEngine(3)
        out = eng.chain(
            [WORDCOUNT, job2], [(0, "a a b c"), (1, "b c d")]
        )
        # counts: a=2, b=2, c=2, d=1 -> parities: 0 x3, 1 x1
        assert dict(out) == {0: 3, 1: 1}

    def test_empty_input(self):
        eng = MapReduceEngine(2)
        assert eng.run(WORDCOUNT, []) == []
        assert eng.job_stats[0].map_input_records == 0

    def test_memory_tracked(self):
        eng = MapReduceEngine(2)
        eng.run(WORDCOUNT, [(i, "word " * 50) for i in range(20)])
        assert eng.usage.peak_rank_memory_bytes > 0

    def test_critical_compute_divided_by_workers(self):
        records = [(i, "a b c") for i in range(40)]
        e1, e4 = MapReduceEngine(1), MapReduceEngine(4)
        e1.run(WORDCOUNT, records)
        e4.run(WORDCOUNT, records)
        c1 = e1.usage.phases[0].critical_compute
        c4 = e4.usage.phases[0].critical_compute
        assert c4 == pytest.approx(c1 / 4)

    @settings(max_examples=20, deadline=None)
    @given(
        words=st.lists(
            st.text(alphabet="abc", min_size=1, max_size=3), min_size=0, max_size=50
        ),
        workers=st.integers(min_value=1, max_value=8),
    )
    def test_wordcount_matches_counter(self, words, workers):
        from collections import Counter

        expected = Counter(words)
        eng = MapReduceEngine(workers)
        out = eng.run(WORDCOUNT, [(i, w) for i, w in enumerate(words)])
        assert dict(out) == dict(expected)

    @settings(max_examples=10, deadline=None)
    @given(workers=st.integers(min_value=1, max_value=6))
    def test_group_conservation(self, workers):
        # Every mapped key must arrive at exactly one reducer group.
        records = [(i, f"k{i % 11}") for i in range(100)]
        eng = MapReduceEngine(workers)
        out = eng.run(WORDCOUNT, records)
        assert sum(v for _, v in out) == 100
        assert len(out) == 11
