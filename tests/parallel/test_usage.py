"""Tests for resource-usage records and payload sizing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import Tracer, use_tracer
from repro.parallel.usage import PhaseUsage, ResourceUsage, merge_all, nbytes


class TestNbytes:
    def test_none(self):
        assert nbytes(None) == 0

    def test_numpy(self):
        assert nbytes(np.zeros(10, dtype=np.uint64)) == 80

    def test_bytes_str(self):
        assert nbytes(b"abcd") == 4
        assert nbytes("abcd") == 4

    def test_str_counts_utf8_bytes_not_code_points(self):
        # regression: len(str) under-charged non-ASCII payloads
        assert nbytes("né") == 3  # e-acute is 2 bytes in UTF-8
        assert nbytes("☃") == 3
        assert nbytes("🧬") == 4

    def test_mixed_payload_regression_pin(self):
        payload = ["ACGT", "séq", b"\x00\x01", ("🧬", 1)]
        # 4 + (2 + 2) + 2 + (4 + 8 + 16) + list overhead 16
        assert nbytes(payload) == 4 + 4 + 2 + 28 + 16

    def test_scalars(self):
        assert nbytes(3) == 8
        assert nbytes(3.5) == 8
        assert nbytes(np.int64(3)) == 8

    def test_containers(self):
        assert nbytes([1, 2, 3]) == 3 * 8 + 16
        assert nbytes((1.0, 2.0)) == 2 * 8 + 16
        assert nbytes({1: "ab"}) == 8 + 2 + 16

    def test_nested(self):
        inner = nbytes([np.zeros(4, dtype=np.uint8)])
        assert inner == 4 + 16

    def test_object_fallback(self):
        class Thing:
            def __init__(self):
                self.x = 1

        assert nbytes(Thing()) > 0


class TestPhaseUsage:
    def test_scaled_scales_data_quantities(self):
        p = PhaseUsage(
            name="x", kind="kmer", critical_compute=10, total_compute=40,
            serial_compute=5, comm_bytes=100, n_collectives=3, n_messages=7,
            n_jobs=2,
        )
        s = p.scaled(10)
        assert s.critical_compute == 100
        assert s.total_compute == 400
        assert s.serial_compute == 50
        assert s.comm_bytes == 1000
        assert s.n_messages == 70
        # structural counts unscaled
        assert s.n_collectives == 3
        assert s.n_jobs == 2

    def test_defaults(self):
        p = PhaseUsage(name="x")
        assert p.kind == "generic"
        assert p.critical_compute == 0


class TestResourceUsage:
    def make(self):
        u = ResourceUsage(n_ranks=4)
        u.add_phase(PhaseUsage("a", "kmer", critical_compute=10, total_compute=40,
                               comm_bytes=100, n_collectives=1))
        u.add_phase(PhaseUsage("b", "graph", critical_compute=5, total_compute=20,
                               serial_compute=2, n_messages=3, n_jobs=1))
        u.peak_rank_memory_bytes = 1000
        return u

    def test_aggregates(self):
        u = self.make()
        assert u.critical_compute == 15
        assert u.total_compute == 60
        assert u.serial_compute == 2
        assert u.comm_bytes == 100
        assert u.n_collectives == 1
        assert u.n_messages == 3
        assert u.n_jobs == 1

    def test_by_kind(self):
        u = self.make()
        assert u.by_kind() == {"kmer": 10, "graph": 5}

    def test_merge(self):
        a, b = self.make(), self.make()
        b.peak_rank_memory_bytes = 5000
        m = a.merge(b)
        assert len(m.phases) == 4
        assert m.peak_rank_memory_bytes == 5000
        assert m.critical_compute == 30

    def test_merge_all(self):
        parts = [self.make() for _ in range(3)]
        m = merge_all(parts)
        assert len(m.phases) == 6
        assert m.n_ranks == 4

    def test_merge_all_empty(self):
        m = merge_all([])
        assert m.phases == []
        assert m.critical_compute == 0

    def test_scaled(self):
        u = self.make()
        s = u.scaled(2.0)
        assert s.critical_compute == 30
        assert s.peak_rank_memory_bytes == 2000
        assert s.n_ranks == 4

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            self.make().scaled(0)

    @given(st.floats(min_value=0.01, max_value=1e6))
    def test_scaling_linearity(self, f):
        u = self.make()
        assert u.scaled(f).critical_compute == pytest.approx(
            f * u.critical_compute
        )

    def test_add_phase_emits_trace_event(self):
        tracer = Tracer()
        with use_tracer(tracer):
            ResourceUsage().add_phase(
                PhaseUsage("walk", "graph", critical_compute=7, comm_bytes=9)
            )
        (e,) = tracer.events
        assert e.name == "phase" and e.category == "phase"
        assert e.attrs["phase"] == "walk"
        assert e.attrs["critical_compute"] == 7
        assert e.attrs["comm_bytes"] == 9
