"""Tests for the SPMD communicator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.comm import CommError, SimWorld


class TestConstruction:
    def test_size(self):
        assert SimWorld(4).size == 4
        assert list(SimWorld(3).ranks()) == [0, 1, 2]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SimWorld(0)


class TestPhases:
    def test_phase_records_usage(self):
        w = SimWorld(2)
        with w.phase("work", kind="kmer"):
            w.charge(0, 10)
            w.charge(1, 4)
            w.charge(1, 2)
        u = w.usage
        assert len(u.phases) == 1
        assert u.phases[0].name == "work"
        assert u.phases[0].kind == "kmer"
        assert u.phases[0].critical_compute == 10
        assert u.phases[0].total_compute == 16

    def test_nested_phase_rejected(self):
        w = SimWorld(2)
        with w.phase("a"):
            with pytest.raises(CommError):
                with w.phase("b"):
                    pass

    def test_charge_outside_phase_rejected(self):
        w = SimWorld(2)
        with pytest.raises(CommError):
            w.charge(0, 1)

    def test_phase_closed_after_exception(self):
        w = SimWorld(2)
        with pytest.raises(RuntimeError):
            with w.phase("a"):
                raise RuntimeError("boom")
        # phase recorded and closed; a new phase can start
        with w.phase("b"):
            w.charge(0, 1)
        assert [p.name for p in w.usage.phases] == ["a", "b"]

    def test_serial_charge(self):
        w = SimWorld(4)
        with w.phase("merge"):
            w.charge_serial(100)
        assert w.usage.phases[0].serial_compute == 100

    def test_bad_rank_rejected(self):
        w = SimWorld(2)
        with w.phase("a"):
            with pytest.raises(CommError):
                w.charge(2, 1)
            with pytest.raises(CommError):
                w.charge(-1, 1)

    def test_memory_tracking(self):
        w = SimWorld(2)
        with w.phase("a"):
            w.record_memory(0, 100)
            w.record_memory(1, 500)
            w.record_memory(0, 300)
        assert w.usage.peak_rank_memory_bytes == 500


class TestCollectives:
    def test_alltoall_semantics(self):
        w = SimWorld(3)
        send = [[f"{s}->{d}" for d in range(3)] for s in range(3)]
        with w.phase("x"):
            recv = w.alltoall(send)
        for d in range(3):
            for s in range(3):
                assert recv[d][s] == f"{s}->{d}"

    def test_alltoall_counts_offdiagonal_bytes_only(self):
        w = SimWorld(2)
        big = np.zeros(100, dtype=np.uint8)
        send = [[big, big], [big, big]]
        with w.phase("x"):
            w.alltoall(send)
        assert w.usage.phases[0].comm_bytes == 200  # two off-diagonal payloads

    def test_alltoall_shape_check(self):
        w = SimWorld(2)
        with w.phase("x"):
            with pytest.raises(CommError):
                w.alltoall([[1, 2]])

    def test_allreduce_default_sum(self):
        w = SimWorld(4)
        with w.phase("x"):
            assert w.allreduce([1, 2, 3, 4]) == 10

    def test_allreduce_custom_op(self):
        w = SimWorld(3)
        with w.phase("x"):
            assert w.allreduce([5, 9, 2], op=max) == 9

    def test_gather_bcast_scatter_allgather(self):
        w = SimWorld(3)
        with w.phase("x"):
            assert w.gather([1, 2, 3]) == [1, 2, 3]
            assert w.bcast("hello") == "hello"
            assert w.scatter(["a", "b", "c"]) == ["a", "b", "c"]
            assert w.allgather([7, 8, 9]) == [7, 8, 9]

    def test_vector_shape_check(self):
        w = SimWorld(3)
        with w.phase("x"):
            with pytest.raises(CommError):
                w.allreduce([1, 2])

    def test_barrier_counts_collective(self):
        w = SimWorld(2)
        with w.phase("x"):
            w.barrier()
            w.barrier()
        assert w.usage.phases[0].n_collectives == 2
        assert w.usage.phases[0].comm_bytes == 0

    def test_message_counting(self):
        w = SimWorld(2)
        with w.phase("x"):
            w.count_messages(5)
        assert w.usage.phases[0].n_messages == 5

    def test_single_rank_alltoall_no_comm(self):
        w = SimWorld(1)
        with w.phase("x"):
            recv = w.alltoall([[np.zeros(100, dtype=np.uint8)]])
        assert w.usage.phases[0].comm_bytes == 0
        assert recv[0][0].shape == (100,)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_alltoall_is_transpose(self, n, seed):
        rng = np.random.default_rng(seed)
        w = SimWorld(n)
        send = [[int(rng.integers(0, 1000)) for _ in range(n)] for _ in range(n)]
        with w.phase("x"):
            recv = w.alltoall(send)
        assert [[recv[d][s] for d in range(n)] for s in range(n)] == send

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=8),
        values=st.lists(st.integers(-1000, 1000), min_size=8, max_size=8),
    )
    def test_allreduce_matches_python_sum(self, n, values):
        w = SimWorld(n)
        with w.phase("x"):
            assert w.allreduce(values[:n]) == sum(values[:n])
