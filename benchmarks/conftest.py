"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark prints the table/figure it regenerates (run pytest with
``-s`` to see them inline; they are also asserted structurally) and uses
pytest-benchmark to time the representative computation.
"""

import pytest

from repro.bench.calibration import calibrated_cost_model
from repro.seq.datasets import tiny_dataset


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="downscaled quick pass for CI: tiny inputs, relaxed speedup "
        "floors, no BENCH_*.json files rewritten",
    )


@pytest.fixture(scope="session")
def smoke(request):
    return request.config.getoption("--smoke")


@pytest.fixture(scope="session")
def ds_single():
    return tiny_dataset(paired=False, seed=1)


@pytest.fixture(scope="session")
def reads_single(ds_single):
    return ds_single.run.all_reads()


@pytest.fixture(scope="session")
def cost_model():
    """The Table III-calibrated cost model (built once per session)."""
    return calibrated_cost_model()


@pytest.fixture(scope="session")
def report_sink():
    """Collects rendered tables so the session summary can re-print them."""
    chunks: list[str] = []
    yield chunks
    if chunks:
        print("\n\n" + "\n\n".join(chunks))
