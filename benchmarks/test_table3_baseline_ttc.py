"""Table III — baseline TTC of the three de novo assemblers.

Paper: B. glumae data, k=47, two c3.2xlarge nodes:
Ray 1,721 s | ABySS 882 s | Contrail 6,720 s.

These three numbers are the calibration anchors of the cost model (see
``repro.bench.calibration``), so the reproduction here verifies that the
calibrated model prices the *measured* bench-scale executions back onto
the paper's numbers, and that the relative ordering is an emergent
property of the assemblers' real usage profiles (messages, serial
fractions, job counts), not of per-assembler fudge factors.
"""

import pytest

from repro.bench import harness
from repro.bench.calibration import (
    ANCHOR_DATASET,
    ANCHOR_INSTANCE,
    ANCHOR_K,
    ANCHOR_NODES,
    TABLE3_TARGETS,
    anchor_report,
)
from repro.bench.harness import format_table


def test_table3_baseline_ttc(benchmark, cost_model, report_sink):
    rows = benchmark.pedantic(anchor_report, rounds=1, iterations=1)
    table = format_table(
        f"Table III: baseline assembler TTC "
        f"({ANCHOR_DATASET}, k={ANCHOR_K}, {ANCHOR_NODES}x{ANCHOR_INSTANCE})",
        ["Assembler", "Paper TTC (s)", "Reproduced TTC (s)"],
        [[n, f"{t:.0f}", f"{p:.0f}"] for n, t, p in rows],
    )
    report_sink.append(table)
    print("\n" + table)

    by_name = {n: p for n, _, p in rows}
    # Anchors land on the paper's numbers (calibration identity).
    for name, target in TABLE3_TARGETS.items():
        assert by_name[name] == pytest.approx(target, rel=0.02)
    # The ordering the paper reports.
    assert by_name["abyss"] < by_name["ray"] < by_name["contrail"]
    # Contrail's penalty vs the MPI assemblers is multiples, not percents.
    assert by_name["contrail"] > 3 * by_name["ray"]


def test_table3_job_structure(benchmark, cost_model):
    """The cost decomposition matches the mechanisms the paper names:
    Contrail pays a many-job Hadoop chain; Ray pays fine-grained messages;
    ABySS carries a serial master fraction."""
    ds = harness.bench_dataset(ANCHOR_DATASET)
    ray = benchmark.pedantic(
        lambda: harness.run_assembly(ANCHOR_DATASET, "ray", ANCHOR_K, 16),
        rounds=1, iterations=1,
    )
    abyss = harness.run_assembly(ANCHOR_DATASET, "abyss", ANCHOR_K, 16)
    contrail = harness.run_assembly(ANCHOR_DATASET, "contrail", ANCHOR_K, 16)

    assert contrail.usage.n_jobs >= 5
    assert ray.usage.n_messages > abyss.usage.n_messages > 0
    assert abyss.usage.serial_compute > ray.usage.serial_compute
