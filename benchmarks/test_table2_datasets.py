"""Table II — data sets for the benchmark experiments.

Regenerates the paper's data-set characteristics table from the specs and
the actual generated analogs (paper-scale columns plus the simulation
scale used throughout the benchmarks).
"""

from repro.bench.harness import BENCH_PARAMS, bench_dataset, format_table
from repro.core.planner import select_kmer_list
from repro.seq.datasets import B_GLUMAE, GB, P_CRISPA


def render_table2() -> str:
    rows = []
    for spec in (B_GLUMAE, P_CRISPA):
        ds = bench_dataset(spec.name)
        rows.append(
            [
                spec.name,
                spec.organism_type,
                f"{spec.genome_size_bp / 1e6:.1f} Mb",
                spec.n_protein_genes,
                f"{spec.fastq_bytes / GB:.1f} GB",
                spec.read_length,
                f"{spec.n_reads:,}" + (" x 2" if spec.paired else ""),
                "yes" if spec.paired else "no",
                f"{spec.preprocess_memory_bytes / GB:.0f} GB",
                ",".join(map(str, spec.kmer_list)),
                f"{ds.read_scale:.1e}",
            ]
        )
    return format_table(
        "Table II: benchmark data sets (paper scale + analog scale)",
        [
            "Organism", "Type", "Genome", "Genes", "FASTQ", "Read len",
            "Reads", "Paired", "Preproc mem", "k-mers", "sim read scale",
        ],
        rows,
    )


def test_table2_dataset_characteristics(benchmark, report_sink):
    table = render_table2()
    report_sink.append(table)
    print("\n" + table)

    # Paper-scale constants (Table II).
    assert B_GLUMAE.genome_size_bp == 6_700_000
    assert P_CRISPA.genome_size_bp == 34_500_000
    assert B_GLUMAE.n_protein_genes == 5_223
    assert P_CRISPA.n_protein_genes == 13_617
    assert B_GLUMAE.kmer_list == (35, 37, 39, 41, 43, 45, 47)
    assert P_CRISPA.kmer_list == (51, 55, 59, 63)
    # The k-mer selection rule regenerates both lists from read length.
    assert select_kmer_list(B_GLUMAE.read_length) == B_GLUMAE.kmer_list
    assert select_kmer_list(P_CRISPA.read_length) == P_CRISPA.kmer_list

    # The analogs exist at the documented scales and look right.
    ds_bg = benchmark.pedantic(
        lambda: bench_dataset("B_glumae"), rounds=1, iterations=1
    )
    ds_pc = bench_dataset("P_crispa")
    assert not ds_bg.spec.paired and ds_pc.spec.paired
    assert ds_bg.run.spec.read_length == 50
    assert ds_pc.run.spec.read_length == 100
    assert len(ds_pc.run.mates) == len(ds_pc.run.reads)
    assert set(BENCH_PARAMS) == {"B_glumae", "P_crispa"}
    # Data volume ratio between the two sets is preserved within 2x of the
    # paper's 26.2/3.8 ratio at paper scale (exact by construction).
    assert ds_pc.spec.fastq_bytes / ds_bg.spec.fastq_bytes > 5
