"""Fig. 5 / §IV.C — the end-to-end sample run.

Paper configuration: unpublished paired-end B. glumae data (4.4 GB), two
k-mer assemblies for each of the three assemblers (6 SGE jobs), matching
scheme S2, c3.2xlarge everywhere, 36-node cluster for the assembly pilot
(4 MPI single-node jobs + 2 Contrail 16-node jobs).

Paper measurements:
* input transfer:         3 min 35 s  (215 s)
* pre-processing (P_A):   44 min      (2,640 s)
* transcript assembly:    1 h 18 min  (4,680 s), + 1 min SFA conversion
* post-processing (P_C):  41 min      (2,460 s)
* total:                  2 h 47 min  (10,020 s)
* cost:                   $20.28

The reproduction predicts every stage from the calibrated model (only
Table III and the stage rates were fitted); the shape assertions check
each stage lands within a factor of two and the structure matches.
"""

import functools

import pytest

from repro.bench.harness import format_table
from repro.core.rnnotator import PipelineConfig, RnnotatorPipeline
from repro.core.schemes import MatchingScheme
from repro.seq.datasets import B_GLUMAE_PE, generate_dataset

PAPER_STAGES = {
    "stage-in": 215.0,
    "pre-processing": 2640.0,
    "transcript-assembly": 4680.0,
    "post-processing": 2460.0,  # merge + quantification together (P_C)
}
PAPER_TOTAL = 10020.0
PAPER_COST = 20.28


@functools.lru_cache(maxsize=1)
def sample_run():
    from repro.bench.calibration import calibrated_cost_model

    ds = generate_dataset(B_GLUMAE_PE, scale=0.004, seed=11)
    config = PipelineConfig(
        assemblers=("ray", "abyss", "contrail"),
        scheme=MatchingScheme.S2,
        instance_type="c3.2xlarge",
        kmer_list=(51, 55),
        mpi_nodes_per_job=1,
        contrail_nodes_per_job=16,
        # Rnnotator scales its k-mer coverage cutoff with library depth;
        # this PE library is ~190x, so solid k-mers need 4 observations.
        min_count=4,
    )
    pipeline = RnnotatorPipeline(cost_model=calibrated_cost_model())
    return pipeline.run(ds, config)


def test_fig5_sample_run(benchmark, report_sink):
    result = benchmark.pedantic(sample_run, rounds=1, iterations=1)

    ours = {s.name: s.ttc for s in result.stages}
    ours["post-processing"] = ours.get("post-processing", 0.0) + ours.pop(
        "quantification", 0.0
    )
    rows = [
        [name, f"{PAPER_STAGES[name]:.0f}", f"{ours.get(name, 0):.0f}"]
        for name in PAPER_STAGES
    ]
    rows.append(["TOTAL", f"{PAPER_TOTAL:.0f}", f"{result.total_ttc:.0f}"])
    rows.append(
        ["cost (USD)", f"{PAPER_COST:.2f}", f"{result.total_cost:.2f}"]
    )
    table = format_table(
        "Fig. 5 / sample run: stage TTC(s) and cost (S2, 3 assemblers x 2 k)",
        ["Stage", "Paper", "Reproduced"],
        rows,
    )
    report_sink.append(table)
    print("\n" + table)
    print(result.summary())

    # Structure: the paper's exact job mix and fleet size.
    assert result.plan.n_jobs == 6
    assert result.plan.n_nodes == 36
    assert result.kmer_list == (51, 55)
    assembly_stage = next(
        s for s in result.stages if s.name == "transcript-assembly"
    )
    assert assembly_stage.n_nodes == 36
    assert assembly_stage.instance_type == "c3.2xlarge"

    # Stage TTCs land within 2x of the paper's measurements.
    for name, target in PAPER_STAGES.items():
        assert ours[name] == pytest.approx(target, rel=1.0), name
    assert result.total_ttc == pytest.approx(PAPER_TOTAL, rel=1.0)

    # Cost lands within 2x of $20.28.
    assert PAPER_COST / 2 < result.total_cost < PAPER_COST * 2


def test_fig5_s2_reuses_head_vm(benchmark):
    """§IV.C: "the same VM serves for all three pilots" — no inter-pilot
    transfers beyond the initial WAN upload under S2."""
    result = benchmark.pedantic(sample_run, rounds=1, iterations=1)
    upload = next(s for s in result.stages if s.name == "stage-in")
    assert result.transfer_seconds == pytest.approx(upload.ttc, rel=0.01)


def test_fig5_assembly_bounded_by_contrail(benchmark):
    """The paper: assembly-stage TTC "is in fact the longest one required
    for the Contrail-based assembly"."""
    result = benchmark.pedantic(sample_run, rounds=1, iterations=1)
    contrail_units = {
        k: v for k, v in result.assemblies.items() if k[0] == "contrail"
    }
    assert contrail_units
    # Contrail jobs dominate the stage: stage TTC ~ slowest contrail job.
    stage = next(s for s in result.stages if s.name == "transcript-assembly")
    assert stage.ttc > 0
