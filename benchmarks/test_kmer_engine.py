"""Packed k-mer engine speedup on the Fig. 4 Ray-scaling workload.

The packed-integer rewrite (2-bit codes in uint64 words, batched
searchsorted lookups, frontier-based unitig walking) is a pure host-side
optimisation: every virtual quantity — charged work, collective bytes,
message counts, peak memory — is bit-identical to the dict/bytes engine
(asserted here and in tests/assembly/test_parity.py).  What changes is
the *real* wall-time of running a benchmark, which is what bounds how
much of the paper's parameter space a session can sweep.

The measured workload is the Fig. 4 upper-panel cell: Ray on the full
P. crispa bench data at k=51 on 8 ranks (instance r3.2xlarge in the
priced figure).  The old engine is preserved verbatim in
``repro.assembly.reference_impl``.  Results are written to
``BENCH_kmer_engine.json`` at the repo root.
"""

import json
import time
from pathlib import Path

from repro.assembly.base import AssemblyParams
from repro.assembly.ray import RayAssembler
from repro.assembly.reference_impl import reference_ray_assemble
from repro.bench import harness

DATASET = "P_crispa"
K = 51
N_RANKS = 8
MIN_SPEEDUP = 3.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kmer_engine.json"


def _time(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - t0


def test_packed_engine_speedup(report_sink):
    reads = harness.bench_dataset(DATASET).run.all_reads()
    params = AssemblyParams(k=K, min_contig_length=max(100, K))

    # Warm both paths once (imports, lru caches) outside the timed runs.
    warm = reads[:500]
    RayAssembler().assemble(warm, params, n_ranks=N_RANKS)
    reference_ray_assemble(warm, params, n_ranks=N_RANKS)

    new, t_packed = _time(
        RayAssembler().assemble, reads, params, n_ranks=N_RANKS
    )
    ref, t_bytes = _time(
        reference_ray_assemble, reads, params, n_ranks=N_RANKS
    )
    speedup = t_bytes / t_packed

    # The optimisation must be invisible to everything the paper
    # reproduces: identical contigs and identical virtual accounting.
    assert [c.seq for c in new.contigs] == [c.seq for c in ref.contigs]
    assert new.usage.phases == ref.usage.phases
    assert new.usage.peak_rank_memory_bytes == ref.usage.peak_rank_memory_bytes
    assert new.stats == ref.stats

    record = {
        "workload": {
            "dataset": DATASET,
            "n_reads": len(reads),
            "assembler": "ray",
            "k": K,
            "n_ranks": N_RANKS,
        },
        "bytes_engine_wall_s": round(t_bytes, 3),
        "packed_engine_wall_s": round(t_packed, 3),
        "speedup": round(speedup, 2),
        "min_required_speedup": MIN_SPEEDUP,
        "parity": "contigs, phase usage, peak memory and stats identical",
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    report_sink.append(
        f"k-mer engine ({DATASET}, ray k={K}, {N_RANKS} ranks): "
        f"bytes {t_bytes:.2f}s vs packed {t_packed:.2f}s "
        f"({speedup:.1f}x, floor {MIN_SPEEDUP}x)"
    )
    assert speedup >= MIN_SPEEDUP
