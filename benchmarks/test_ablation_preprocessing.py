"""Ablation — what the pre-processing stage actually buys.

Rnnotator's QC stage (dedup + trim + N filter) is not just data
reduction: deduplication removes the recurrent error k-mers that would
otherwise survive the coverage threshold and shatter the graph.  This
ablation assembles the same B. glumae reads with and without
pre-processing and compares the solid-k-mer load, assembly quality and
the priced TTC.
"""

import functools

from repro.assembly.base import AssemblyParams
from repro.assembly.registry import get_assembler
from repro.bench.harness import (
    annotation_reference,
    bench_dataset,
    bench_preprocessed,
    format_table,
    machine_for,
)
from repro.core.scaling import paper_usage
from repro.evaluation.detonate import evaluate

K = 41


@functools.lru_cache(maxsize=1)
def ablation_rows():
    from repro.bench.calibration import calibrated_cost_model

    cm = calibrated_cost_model()
    ds = bench_dataset("B_glumae")
    ref = annotation_reference("B_glumae")
    params = AssemblyParams(k=K, min_contig_length=100)
    machine = machine_for("c3.2xlarge", 2)

    variants = {
        "raw reads": ds.run.all_reads(),
        "preprocessed": bench_preprocessed("B_glumae").reads,
    }
    rows = {}
    for name, reads in variants.items():
        result = get_assembler("ray").assemble(reads, params, n_ranks=16)
        scores = evaluate(result.contigs, ref)
        ttc = cm.task_seconds(paper_usage(result.usage, ds), machine)
        rows[name] = {
            "solid_kmers": result.stats["distinct_kmers"],
            "contigs": len(result.contigs),
            "f1": scores.f1,
            "precision": scores.precision,
            "ttc": ttc,
        }
    return rows


def test_ablation_preprocessing(benchmark, report_sink):
    rows = benchmark.pedantic(ablation_rows, rounds=1, iterations=1)
    table = format_table(
        f"Ablation: pre-processing effect (B. glumae, ray, k={K}, "
        "2x c3.2xlarge)",
        ["Input", "solid k-mers", "contigs", "precision", "F1", "TTC (s)"],
        [
            [name, r["solid_kmers"], r["contigs"], f"{r['precision']:.2f}",
             f"{r['f1']:.2f}", f"{r['ttc']:.0f}"]
            for name, r in rows.items()
        ],
    )
    report_sink.append(table)
    print("\n" + table)

    raw, pre = rows["raw reads"], rows["preprocessed"]
    # Dedup removes recurrent error k-mers: smaller solid graph.
    assert pre["solid_kmers"] < raw["solid_kmers"]
    # Quality does not degrade (usually improves) despite fewer reads.
    assert pre["f1"] >= raw["f1"] - 0.05
    # And the assembly gets cheaper.
    assert pre["ttc"] < raw["ttc"]
