"""Count-once multi-k fusion speedup on the Fig. 4 multi-k workload.

The measured workload is one multi-k, multi-assembler fan-out over a
deep-coverage read set (the shape behind Fig. 4's per-k Ray runs plus
the Table I assembler sweep), run through the full pilot machinery on
the process backend:

* **unfused path** — every job extracts, canonicalizes, sorts and
  counts its k-mer stream from the shared ReadStore on its own, the way
  PR 6 left it: ``ray_k25``, ``abyss_k25`` and ``velvet_k25`` each
  re-count the identical 25-mer multiset, and every distinct k re-walks
  the same code array.
* **fused path** — :func:`repro.assembly.sweep.build_spectra` performs
  ONE pass over the codes for all k values (smaller k derived by
  masking the largest-k packing), and every workload is served from the
  shared pre-sorted :class:`~repro.assembly.sweep.KmerSpectrum` through
  the content-addressed :class:`~repro.assembly.sweep.KmerTableCache`.

Both paths must produce bit-identical contigs, stats, usage (hence comm
bytes) and virtual TTCs — the fusion is host-side only.  Results land
in ``BENCH_multik.json`` (full tier) / ``BENCH_multik.smoke.json``
(``--smoke``; smaller input, contrail included, relaxed floor).
"""

import json
import time
from pathlib import Path

from repro.assembly.base import AssemblyParams
from repro.assembly.sweep import (
    KmerTableCache,
    build_spectra,
    use_kmer_table_cache,
)
from repro.assembly.trinity import TRINITY_K
from repro.cloud.clock import EventQueue, SimClock
from repro.cloud.ec2 import EC2Region
from repro.core.assembly_cache import use_assembly_cache
from repro.core.multikmer import AssemblyWorkload
from repro.parallel.executor import ProcessExecutor
from repro.pilot.db import StateStore
from repro.pilot.description import PilotDescription, UnitDescription
from repro.pilot.manager import PilotManager, UnitManager
from repro.pilot.states import UnitState
from repro.seq.datasets import tiny_dataset
from repro.seq.readstore import ReadStore

#: The full-tier workload: three pipeline assemblers at two k values
#: plus the Trinity baseline at its fixed k=25 — seven real assemblies
#: over one store, five of them sharing a spectrum with at least one
#: other job.  (Contrail joins in the smoke tier: its MapReduce rounds
#: dominate its runtime on a small box and would dilute the full-tier
#: wall-clock signal without exercising anything the smoke tier misses.)
JOBS = [(a, k) for a in ("ray", "abyss", "velvet") for k in (25, 31)]
JOBS += [("trinity", TRINITY_K)]
SMOKE_JOBS = JOBS + [("contrail", 25)]
N_RANKS = 4
MIN_SPEEDUP = 2.0
MIN_COUNT = 3
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_multik.json"
SMOKE_RESULT_PATH = RESULT_PATH.with_suffix(".smoke.json")


def _descs(jobs, store, spectra):
    descs = []
    for name, k in jobs:
        want_k = TRINITY_K if name == "trinity" else k
        descs.append(
            UnitDescription(
                name=f"{name}_k{k}",
                work=AssemblyWorkload(
                    assembler_name=name,
                    params=AssemblyParams(
                        k=k, min_count=MIN_COUNT, min_contig_length=100
                    ),
                    n_ranks=N_RANKS,
                    store=store,
                    use_cache=False,
                    spectra=tuple(
                        sp for sp in spectra if sp.k == want_k
                    ),
                ),
                cores=8,
                scale=1.0,
                stage="transcript-assembly",
                tags={"assembler": name, "k": k},
            )
        )
    return descs


def _run_fanout(descs):
    """One fan-out through the full pilot machinery on a fresh pool."""
    clock = SimClock()
    events = EventQueue(clock)
    region = EC2Region(clock)
    db = StateStore(clock)
    pm = PilotManager(region, events, db)
    pilot = pm.launch(pm.submit(PilotDescription("P", "c3.2xlarge", len(descs))))
    with ProcessExecutor() as executor:
        um = UnitManager(db, events, executor=executor)
        um.add_pilot(pilot)
        units = um.submit_units(descs)
        um.run(units)
        um.close()
    assert all(u.state is UnitState.DONE for u in units)
    return units, clock.now


def test_multik_fusion_speedup(report_sink, smoke):
    jobs = SMOKE_JOBS if smoke else JOBS
    ds = tiny_dataset(
        paired=False, seed=1, coverage_boost=1.0 if smoke else 20.0
    )
    reads = ds.run.all_reads()
    if smoke:
        reads = reads[:800]
    store = ReadStore.from_reads(reads)
    ks = sorted({TRINITY_K if a == "trinity" else k for a, k in jobs})

    try:
        with use_assembly_cache(None):
            t0 = time.perf_counter()
            base_units, base_vtime = _run_fanout(_descs(jobs, store, ()))
            base_wall = time.perf_counter() - t0

            cache = KmerTableCache()
            with use_kmer_table_cache(cache):
                t0 = time.perf_counter()
                # The one fused pass is part of the fused path's bill.
                spectra = build_spectra(store, ks)
                try:
                    fused_units, fused_vtime = _run_fanout(
                        _descs(jobs, store, spectra)
                    )
                finally:
                    for sp in spectra:
                        sp.close()
                fused_wall = time.perf_counter() - t0
    finally:
        store.close()
    speedup = base_wall / fused_wall

    # -- parity: the fusion must be invisible to every virtual quantity.
    assert base_vtime == fused_vtime  # one virtual TTC, both paths
    for b, f in zip(base_units, fused_units):
        assert b.description.name == f.description.name
        assert b.result.contigs == f.result.contigs
        assert b.result.stats == f.result.stats
        assert b.usage == f.usage
        assert b.usage.comm_bytes == f.usage.comm_bytes
        assert b.ttc == f.ttc

    report_sink.append(
        f"multi-k fusion speedup ({len(jobs)} jobs, ks={ks}, "
        f"{len(reads)} reads): unfused {base_wall:.2f}s vs fused "
        f"{fused_wall:.2f}s ({speedup:.2f}x)"
    )

    record = {
        "workload": {
            "n_reads": len(reads),
            "jobs": [f"{a}_k{k}" for a, k in jobs],
            "ks": ks,
            "n_ranks": N_RANKS,
            "min_count": MIN_COUNT,
            "backend": "process",
            "tier": "smoke" if smoke else "full",
        },
        "unfused_wall_s": round(base_wall, 3),
        "fused_wall_s": round(fused_wall, 3),
        "speedup": round(speedup, 2),
        "min_required_speedup": 1.0 if smoke else MIN_SPEEDUP,
        "virtual_ttc_s": base_vtime,
        "parity": "contigs, stats, usage, comm bytes and virtual TTCs "
        "identical across paths",
    }
    path = SMOKE_RESULT_PATH if smoke else RESULT_PATH
    path.write_text(json.dumps(record, indent=2) + "\n")

    # The smoke tier proves parity and writes the artifact; only the
    # full tier is large enough for a stable wall-clock floor.
    assert speedup >= (0.8 if smoke else MIN_SPEEDUP)
