"""Tracing overhead on the Fig. 4 Ray-scaling workload.

The observability layer promises to be (a) zero-cost when disabled — the
default :class:`~repro.obs.NullTracer` turns every instrumentation point
into a cheap attribute check — (b) cheap enough when enabled that traced
benchmark sessions stay representative, and (c) cheap enough *inside
pool workers* that tracing a process-backend run (buffering, resource
sampling, shipping the trace back, merging it) stays under the same
budget — and (d) cheap enough with the *live* telemetry attached (a
streaming JSONL sink receiving every record plus a heartbeat thread
beating over an in-flight table) that watching a run costs no more than
tracing it.  The first two are priced on the same workload as
``test_kmer_engine.py`` (Ray on the full P. crispa bench data at k=51 on
8 ranks); the worker-side cost on a batch of instrumented workloads
through a warm :class:`ProcessExecutor` pool.  Results are merged into
``BENCH_obs_overhead.json`` at the repo root (``ambient``,
``worker_tracing`` and ``live_telemetry`` keys).
"""

import functools
import gc
import json
import time
from pathlib import Path

from repro.assembly.base import AssemblyParams
from repro.assembly.ray import RayAssembler
from repro.bench import harness
from repro.obs import (
    NullTracer,
    SpanContext,
    Tracer,
    get_tracer,
    merge_worker_trace,
    use_tracer,
)
from repro.obs.live import (
    HeartbeatMonitor,
    InflightUnit,
    JsonlStreamSink,
    StragglerDetector,
)
from repro.parallel.executor import ProcessExecutor
from repro.parallel.usage import ResourceUsage

DATASET = "P_crispa"
K = 51
N_RANKS = 8
REPEATS = 7
#: Enabled tracing must stay under this fractional slowdown.
MAX_TRACED_OVERHEAD = 0.05
#: The no-op tracer must be indistinguishable from baseline (noise floor).
MAX_NULL_OVERHEAD = 0.03
#: Worker-side tracing (buffer + resource sampler + merge) budget.
MAX_WORKER_OVERHEAD = 0.05
#: Live telemetry (streaming sink + heartbeat thread) budget.
MAX_LIVE_OVERHEAD = 0.05
#: Heartbeat cadence used in the live-telemetry benchmark (real s).
LIVE_HEARTBEAT_CADENCE = 0.02
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"

# Process-pool batch shape (downscaled under --smoke).
POOL_WORKERS = 2
WORKER_REPEATS = 10
N_WORKLOADS = 8
CHUNKS = 8
CHUNK_ITERS = 120_000
SMOKE_WORKLOADS = 4
SMOKE_CHUNK_ITERS = 20_000
RESOURCE_CADENCE = 0.01


def _interleaved_walls(fns, repeats=REPEATS) -> list[list[float]]:
    """Per-round wall times for each mode, measured in rotating rounds.

    Timing each mode in its own contiguous block lets slow drift
    (thermal throttling, background load, monotonic heap growth) land
    entirely on whichever mode ran last and masquerade as overhead.
    Alternating spreads drift across modes, rotating the in-round order
    keeps any fixed position advantage from sticking to one mode, and a
    pre-run ``gc.collect()`` stops one mode's garbage from being
    collected on another mode's clock.  Returns one wall-time list per
    mode, index-aligned by round so callers can pair modes *within* a
    round — round-level load shifts cancel in the per-round ratio."""
    walls = [[0.0] * repeats for _ in fns]
    for r in range(repeats):
        for i in range(len(fns)):
            j = (i + r) % len(fns)
            gc.collect()
            t0 = time.perf_counter()
            fns[j]()
            walls[j][r] = time.perf_counter() - t0
    return walls


def _best_ratio(mode_walls, base_walls) -> float:
    """Best per-round mode/baseline wall ratio (least one-sided noise)."""
    return min(m / b for m, b in zip(mode_walls, base_walls))


def _update_result(key: str, record: dict) -> None:
    """Merge one benchmark's record into the shared BENCH json."""
    doc = {}
    if RESULT_PATH.exists():
        doc = json.loads(RESULT_PATH.read_text())
        if "ambient" not in doc and "worker_tracing" not in doc:
            doc = {}  # pre-split flat layout: start over
    doc[key] = record
    RESULT_PATH.write_text(json.dumps(doc, indent=2) + "\n")


def test_tracing_overhead(report_sink):
    reads = harness.bench_dataset(DATASET).run.all_reads()
    params = AssemblyParams(k=K, min_contig_length=max(100, K))

    def workload():
        return RayAssembler().assemble(reads, params, n_ranks=N_RANKS)

    workload()  # warm caches outside the timed runs

    tracer = Tracer()

    def baseline():  # default: module-level NullTracer
        workload()

    def null_run():
        with use_tracer(NullTracer()):
            workload()

    def traced_run():
        with use_tracer(tracer):
            workload()

    w_baseline, w_null, w_traced = _interleaved_walls(
        [baseline, null_run, traced_run]
    )
    t_baseline, t_null, t_traced = (
        min(w_baseline), min(w_null), min(w_traced)
    )

    # the traced runs actually recorded something
    assert tracer.events, "traced workload emitted no events"

    # Gate on the best *paired* per-round ratio, not min-of-mins: one
    # lucky baseline round (pristine heap, quiet box) would otherwise
    # inflate every mode's apparent overhead.
    null_overhead = _best_ratio(w_null, w_baseline) - 1.0
    traced_overhead = _best_ratio(w_traced, w_baseline) - 1.0

    record = {
        "workload": {
            "dataset": DATASET,
            "n_reads": len(reads),
            "assembler": "ray",
            "k": K,
            "n_ranks": N_RANKS,
            "repeats": REPEATS,
        },
        "baseline_wall_s": round(t_baseline, 4),
        "null_tracer_wall_s": round(t_null, 4),
        "traced_wall_s": round(t_traced, 4),
        "null_overhead_frac": round(null_overhead, 4),
        "traced_overhead_frac": round(traced_overhead, 4),
        "events_recorded": len(tracer.events),
        "max_traced_overhead": MAX_TRACED_OVERHEAD,
        "max_null_overhead": MAX_NULL_OVERHEAD,
    }
    _update_result("ambient", record)

    report_sink.append(
        f"tracing overhead ({DATASET}, ray k={K}, {N_RANKS} ranks): "
        f"baseline {t_baseline:.3f}s, null {t_null:.3f}s "
        f"({null_overhead:+.1%}), traced {t_traced:.3f}s "
        f"({traced_overhead:+.1%})"
    )
    assert null_overhead < MAX_NULL_OVERHEAD
    assert traced_overhead < MAX_TRACED_OVERHEAD


def test_live_telemetry_overhead(report_sink, tmp_path):
    """Price the full live stack: every span/event/metric streamed to a
    flushed-per-line JSONL sink while a heartbeat thread (with straggler
    detection armed) beats over a 4-unit in-flight table — versus the
    bare untraced baseline.  This is the whole cost of being watchable:
    the gate says attaching a live monitor may not cost more than the
    tracing budget itself."""
    reads = harness.bench_dataset(DATASET).run.all_reads()
    params = AssemblyParams(k=K, min_contig_length=max(100, K))

    def workload():
        return RayAssembler().assemble(reads, params, n_ranks=N_RANKS)

    workload()  # warm caches outside the timed runs

    tracer = Tracer()
    sink = tracer.add_sink(JsonlStreamSink(tmp_path / "live.jsonl", tracer=tracer))
    detector = StragglerDetector()
    for wall in (0.2, 0.25, 0.3):  # arm the peer model so check() runs hot
        detector.note_completion(wall)
    inflight = [
        InflightUnit(
            unit_id=f"unit.{i:06d}",
            name=f"bench_k{i}",
            stage="transcript-assembly",
            submitted_r=time.perf_counter(),
        )
        for i in range(4)
    ]
    heartbeat = HeartbeatMonitor(
        tracer,
        cadence=LIVE_HEARTBEAT_CADENCE,
        inflight=lambda: inflight,
        detector=detector,
    )

    def baseline():
        workload()

    def live_run():
        with use_tracer(tracer):
            workload()

    heartbeat.start()
    try:
        w_baseline, w_live = _interleaved_walls([baseline, live_run])
    finally:
        heartbeat.stop()
    tracer.close_sinks()
    t_baseline, t_live = min(w_baseline), min(w_live)

    # the live stack really ran: records streamed, heartbeats beat
    assert (tmp_path / "live.jsonl").stat().st_size > 0
    assert heartbeat.beats > 0
    assert any(e.name == "unit.heartbeat" for e in tracer.events)

    live_overhead = _best_ratio(w_live, w_baseline) - 1.0
    record = {
        "workload": {
            "dataset": DATASET,
            "n_reads": len(reads),
            "assembler": "ray",
            "k": K,
            "n_ranks": N_RANKS,
            "repeats": REPEATS,
        },
        "baseline_wall_s": round(t_baseline, 4),
        "live_wall_s": round(t_live, 4),
        "live_overhead_frac": round(live_overhead, 4),
        "heartbeat_cadence_s": LIVE_HEARTBEAT_CADENCE,
        "heartbeat_beats": heartbeat.beats,
        "events_recorded": len(tracer.events),
        "max_live_overhead": MAX_LIVE_OVERHEAD,
    }
    _update_result("live_telemetry", record)

    report_sink.append(
        f"live telemetry overhead ({DATASET}, ray k={K}, {N_RANKS} ranks, "
        f"sink + {LIVE_HEARTBEAT_CADENCE * 1000:.0f}ms heartbeats): "
        f"baseline {t_baseline:.3f}s, live {t_live:.3f}s "
        f"({live_overhead:+.1%}, {heartbeat.beats} beats)"
    )
    assert live_overhead < MAX_LIVE_OVERHEAD


def _pool_work(chunks: int, iters: int):
    """A CPU-bound workload with realistic instrumentation density: one
    span + one counter + one histogram observation per chunk, all routed
    through :func:`get_tracer` so a worker-side BufferingTracer (when a
    SpanContext rides along) or the free NullTracer (when none does)
    picks them up."""
    tracer = get_tracer()
    total = 0
    for c in range(chunks):
        with tracer.span("chunk", category="worker", chunk=c):
            total += sum(i * i for i in range(iters))
            tracer.count("bench_chunks")
            tracer.observe("chunk_checksum", float(total % 997))
    return total, ResourceUsage()


def _run_batch(executor, work, contexts):
    handles = [executor.submit(work, ctx) for ctx in contexts]
    outcomes = [h.outcome() for h in handles]
    assert all(o.error is None for o in outcomes)
    return outcomes


def test_worker_tracing_overhead(report_sink, smoke):
    n_workloads = SMOKE_WORKLOADS if smoke else N_WORKLOADS
    iters = SMOKE_CHUNK_ITERS if smoke else CHUNK_ITERS
    work = functools.partial(_pool_work, CHUNKS, iters)
    parent = Tracer()

    with ProcessExecutor(max_workers=POOL_WORKERS) as executor:
        # Warm the fork pool so neither mode pays its creation cost.
        _run_batch(
            executor,
            functools.partial(_pool_work, 1, 100),
            [None] * POOL_WORKERS,
        )

        def untraced():
            _run_batch(executor, work, [None] * n_workloads)

        def traced():
            # End-to-end cost of the feature: capture a context per
            # submit, buffer + resource-sample in the worker, ship the
            # trace back and merge it into the parent.
            contexts = [
                SpanContext.capture(
                    parent,
                    thread=f"w{i}",
                    resource_cadence=RESOURCE_CADENCE,
                )
                for i in range(n_workloads)
            ]
            outcomes = _run_batch(executor, work, contexts)
            for outcome, context in zip(outcomes, contexts):
                merge_worker_trace(parent, outcome.worker_trace, context)

        # Gate on the best per-round traced/untraced ratio: pairing the
        # two modes inside one round cancels round-level load (the box
        # may be 10% slower for a whole round — both modes see it), and
        # the *minimum* ratio is the round least polluted by one-sided
        # scheduling noise.  Alternate the in-round order so neither
        # mode owns the "first after a gap" slot.
        walls = {"untraced": [], "traced": []}
        for r in range(WORKER_REPEATS):
            order = (
                (untraced, "untraced"), (traced, "traced")
            ) if r % 2 == 0 else (
                (traced, "traced"), (untraced, "untraced")
            )
            for fn, label in order:
                gc.collect()
                t0 = time.perf_counter()
                fn()
                walls[label].append(time.perf_counter() - t0)
        ratios = [
            t / u for t, u in zip(walls["traced"], walls["untraced"])
        ]
        t_untraced = min(walls["untraced"])
        t_traced = min(walls["traced"])

    # the traced batches really exercised the worker-side path
    assert any(s.process.startswith("worker-") for s in parent.spans)
    assert parent.metrics.counters["bench_chunks"].value > 0

    ordered = sorted(ratios)
    overhead = ordered[0] - 1.0  # best round: least one-sided noise
    median_overhead = ordered[len(ordered) // 2] - 1.0
    record = {
        "workload": {
            "pool_workers": POOL_WORKERS,
            "n_workloads": n_workloads,
            "chunks": CHUNKS,
            "chunk_iters": iters,
            "resource_cadence_s": RESOURCE_CADENCE,
            "repeats": WORKER_REPEATS,
        },
        "untraced_wall_s": round(t_untraced, 4),
        "traced_wall_s": round(t_traced, 4),
        "worker_overhead_frac": round(overhead, 4),
        "median_round_overhead_frac": round(median_overhead, 4),
        "per_round_ratios": [round(r, 4) for r in ratios],
        "worker_spans_merged": sum(
            1 for s in parent.spans if s.process.startswith("worker-")
        ),
        "max_worker_overhead": MAX_WORKER_OVERHEAD,
    }
    if not smoke:
        _update_result("worker_tracing", record)

    report_sink.append(
        f"worker tracing overhead (process pool x{POOL_WORKERS}, "
        f"{n_workloads} workloads x {CHUNKS} chunks): "
        f"untraced {t_untraced:.3f}s, traced {t_traced:.3f}s "
        f"(best-round {overhead:+.1%}, median {median_overhead:+.1%})"
    )
    assert overhead < (1.0 if smoke else MAX_WORKER_OVERHEAD)
