"""Tracing overhead on the Fig. 4 Ray-scaling workload.

The observability layer promises to be (a) zero-cost when disabled — the
default :class:`~repro.obs.NullTracer` turns every instrumentation point
into a cheap attribute check — and (b) cheap enough when enabled that
traced benchmark sessions stay representative.  This benchmark prices
both promises on the same workload as ``test_kmer_engine.py``: Ray on
the full P. crispa bench data at k=51 on 8 ranks.  Results are written
to ``BENCH_obs_overhead.json`` at the repo root.
"""

import json
import time
from pathlib import Path

from repro.assembly.base import AssemblyParams
from repro.assembly.ray import RayAssembler
from repro.bench import harness
from repro.obs import NullTracer, Tracer, use_tracer

DATASET = "P_crispa"
K = 51
N_RANKS = 8
REPEATS = 3
#: Enabled tracing must stay under this fractional slowdown.
MAX_TRACED_OVERHEAD = 0.05
#: The no-op tracer must be indistinguishable from baseline (noise floor).
MAX_NULL_OVERHEAD = 0.03
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"


def _min_wall(fn, repeats=REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_tracing_overhead(report_sink):
    reads = harness.bench_dataset(DATASET).run.all_reads()
    params = AssemblyParams(k=K, min_contig_length=max(100, K))

    def workload():
        return RayAssembler().assemble(reads, params, n_ranks=N_RANKS)

    workload()  # warm caches outside the timed runs

    t_baseline = _min_wall(workload)  # default: module-level NullTracer

    with use_tracer(NullTracer()):
        t_null = _min_wall(workload)

    tracer = Tracer()
    with use_tracer(tracer):
        t_traced = _min_wall(workload)

    # the traced runs actually recorded something
    assert tracer.events, "traced workload emitted no events"

    null_overhead = t_null / t_baseline - 1.0
    traced_overhead = t_traced / t_baseline - 1.0

    record = {
        "workload": {
            "dataset": DATASET,
            "n_reads": len(reads),
            "assembler": "ray",
            "k": K,
            "n_ranks": N_RANKS,
            "repeats": REPEATS,
        },
        "baseline_wall_s": round(t_baseline, 4),
        "null_tracer_wall_s": round(t_null, 4),
        "traced_wall_s": round(t_traced, 4),
        "null_overhead_frac": round(null_overhead, 4),
        "traced_overhead_frac": round(traced_overhead, 4),
        "events_recorded": len(tracer.events),
        "max_traced_overhead": MAX_TRACED_OVERHEAD,
        "max_null_overhead": MAX_NULL_OVERHEAD,
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    report_sink.append(
        f"tracing overhead ({DATASET}, ray k={K}, {N_RANKS} ranks): "
        f"baseline {t_baseline:.3f}s, null {t_null:.3f}s "
        f"({null_overhead:+.1%}), traced {t_traced:.3f}s "
        f"({traced_overhead:+.1%})"
    )
    assert null_overhead < MAX_NULL_OVERHEAD
    assert traced_overhead < MAX_TRACED_OVERHEAD
