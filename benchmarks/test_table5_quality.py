"""Table V — transcript assembly quality (DETONATE reference metrics).

Paper (B. glumae, DETONATE v1.10 reference-based scores):

======================  =========================  =====================
Assembler used          nucleotide (P, R, F1)      (weighted kmer R, kc)
======================  =========================  =====================
Ray                     0.84, 0.26, 0.40           0.86, 0.86
ABySS                   0.82, 0.42, 0.55           0.79, 0.78
Contrail                0.78, 0.43, 0.56           0.84, 0.83
Ray + Contrail          0.78, 0.43, 0.56           0.78, 0.77
Ray+Contrail+ABySS      0.79, 0.44, 0.57           0.77, 0.76
Trinity                 0.51, 0.35, 0.42           0.84, 0.83
======================  =========================  =====================

Shape assertions (absolute values depend on the synthetic data):
* every pipeline option beats Trinity at the nucleotide level
  (precision in particular),
* weighted k-mer scores are comparable across all options (including
  Trinity),
* the MAMP combinations are not better than the best single assembler,
* kc <= weighted k-mer recall everywhere.
"""

import functools

import pytest

from repro.assembly.registry import get_assembler
from repro.bench.harness import (
    annotation_reference,
    bench_dataset,
    format_table,
    run_assembly,
)
from repro.core.merge import merge_contigs
from repro.evaluation.detonate import DetonateScores, evaluate

#: Subset of the B. glumae k list used for the quality comparison (full
#: 7-k sweeps only change runtimes, not the ordering).
QUALITY_KS = (35, 41, 47)

OPTIONS = {
    "ray": ("ray",),
    "abyss": ("abyss",),
    "contrail": ("contrail",),
    "ray+contrail": ("ray", "contrail"),
    "ray+contrail+abyss": ("ray", "contrail", "abyss"),
}


@functools.lru_cache(maxsize=None)
def option_scores(option: str) -> DetonateScores:
    ds = bench_dataset("B_glumae")
    if option == "trinity":
        # Trinity runs its own preparation on the raw reads (the paper
        # flags exactly this caveat for the comparison).
        result = get_assembler("trinity").assemble(ds.run.all_reads())
        contigs = result.contigs
    else:
        contig_sets = [
            run_assembly("B_glumae", asm, k, 16, preprocessed=True).contigs
            for asm in OPTIONS[option]
            for k in QUALITY_KS
        ]
        contigs = merge_contigs(contig_sets).transcripts
    # Score against the CDS-like annotation (the paper's ground truth is
    # protein genes, not full mRNAs — that is what pulls precision < 1).
    return evaluate(contigs, annotation_reference("B_glumae"))


def all_scores() -> dict[str, DetonateScores]:
    return {name: option_scores(name) for name in [*OPTIONS, "trinity"]}


def test_table5_quality(benchmark, report_sink):
    scores = benchmark.pedantic(all_scores, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{s.precision:.2f}, {s.recall:.2f}, {s.f1:.2f}",
            f"{s.weighted_kmer_recall:.2f}, {s.kc_score:.2f}",
            s.n_contigs,
        ]
        for name, s in scores.items()
    ]
    table = format_table(
        f"Table V: assembly quality (B. glumae analog, k={list(QUALITY_KS)})",
        ["Assembler used", "nucleotide (P, R, F1)", "(wkr, kc)", "contigs"],
        rows,
    )
    report_sink.append(table)
    print("\n" + table)

    trinity = scores["trinity"]
    singles = [scores[n] for n in ("ray", "abyss", "contrail")]
    combos = [scores["ray+contrail"], scores["ray+contrail+abyss"]]

    # 1. pipeline options beat Trinity at the nucleotide level.
    for s in singles + combos:
        assert s.precision > trinity.precision
        assert s.f1 >= trinity.f1 - 0.05

    # 2. weighted k-mer scores comparable across all options.
    wkrs = [s.weighted_kmer_recall for s in singles + combos + [trinity]]
    assert max(wkrs) - min(wkrs) < 0.25

    # 3. MAMP combos are not better than the best single option.
    best_single_f1 = max(s.f1 for s in singles)
    for c in combos:
        assert c.f1 <= best_single_f1 + 0.05

    # 4. kc is wkr minus a positive penalty.
    for s in scores.values():
        assert s.kc_score <= s.weighted_kmer_recall


def test_table5_combination_is_average_like(benchmark):
    """The paper notes the MAMP results sit near the average of the
    single-assembler results rather than dominating them."""
    scores = benchmark.pedantic(all_scores, rounds=1, iterations=1)
    singles_f1 = [scores[n].f1 for n in ("ray", "abyss", "contrail")]
    combo_f1 = scores["ray+contrail+abyss"].f1
    assert min(singles_f1) - 0.1 <= combo_f1 <= max(singles_f1) + 0.1
