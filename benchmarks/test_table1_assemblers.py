"""Table I — de novo assemblers integrated for the RNA-seq pipeline.

Paper row set: Ray (DBG, MPI, 2.3.1), ABySS (DBG, MPI, 1.9.0),
Contrail (DBG, Hadoop MapReduce, 0.8.2).
"""

from repro.assembly.base import AssemblyParams
from repro.assembly.registry import ASSEMBLERS, TABLE1_ASSEMBLERS, get_assembler
from repro.bench.harness import format_table


def render_table1() -> str:
    rows = [
        [
            info.name,
            info.graph_type,
            info.distributed_impl,
            info.analog_of_version,
        ]
        for name, info in ASSEMBLERS.items()
        if name in TABLE1_ASSEMBLERS
    ]
    return format_table(
        "Table I: integrated de novo assemblers",
        ["Name", "Type", "Distributed Impl.", "Analog of"],
        rows,
    )


def test_table1_assembler_inventory(benchmark, report_sink, reads_single):
    """The three Table I assemblers exist, are scalable, and assemble."""
    table = render_table1()
    report_sink.append(table)
    print("\n" + table)

    for name in TABLE1_ASSEMBLERS:
        info = ASSEMBLERS[name]
        assert info.graph_type == "DBG"
        assert info.scalable
    assert ASSEMBLERS["ray"].distributed_impl == "MPI"
    assert ASSEMBLERS["abyss"].distributed_impl == "MPI"
    assert ASSEMBLERS["contrail"].distributed_impl == "Hadoop MapReduce"

    # Time the cheapest integrated assembler on the shared fixture reads.
    params = AssemblyParams(k=31, min_contig_length=100)
    result = benchmark.pedantic(
        lambda: get_assembler("ray").assemble(reads_single, params, n_ranks=8),
        rounds=1,
        iterations=1,
    )
    assert len(result.contigs) > 0
