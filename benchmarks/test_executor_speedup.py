"""Executor-backend speedup: a 6-job fan-out must finish in less real
wall-time on a parallel backend than on the serial baseline.

This is the host-side half of the paper's task-level parallelism claim
("the total 6 jobs ... submitted to SGE" run concurrently): virtual TTC
is backend-independent by construction (see
tests/core/test_executor_parity.py); here we check the *real* clock.

Two backends, two workload shapes:

* process pool + CPU-bound pure-Python work (the GIL rules out thread
  speedup for this shape), and
* thread pool + GIL-releasing work (sleeping stands in for I/O-bound
  workloads).

Both tests skip on single-core runners and keep a generous margin —
they assert the parallel wall-time is merely *below* the serial
baseline, not near the ideal speedup.
"""

import os
import time

import pytest

from repro.cloud.clock import EventQueue, SimClock
from repro.cloud.ec2 import EC2Region
from repro.parallel.usage import PhaseUsage, ResourceUsage
from repro.pilot.db import StateStore
from repro.pilot.description import PilotDescription, UnitDescription
from repro.pilot.manager import PilotManager, UnitManager
from repro.pilot.states import UnitState

N_JOBS = 6

multicore = pytest.mark.skipif(
    (os.cpu_count() or 1) < 2, reason="speedup needs at least 2 host cores"
)


def _usage():
    u = ResourceUsage(n_ranks=1)
    u.add_phase(
        PhaseUsage("w", "generic", critical_compute=1e6, total_compute=1e6)
    )
    return u


def cpu_work():
    """~0.1s of GIL-holding pure-Python compute (module-level: picklable)."""
    acc = 0
    for i in range(1_500_000):
        acc += i * i
    return acc, _usage()


def io_work():
    """GIL-releasing workload: stands in for staging/transfer tasks."""
    time.sleep(0.15)
    return "io", _usage()


def run_fanout(executor, work):
    """Wall-time of a 6-job fan-out through the full pilot machinery."""
    clock = SimClock()
    events = EventQueue(clock)
    region = EC2Region(clock)
    db = StateStore(clock)
    pm = PilotManager(region, events, db)
    pilot = pm.launch(pm.submit(PilotDescription("P", "c3.2xlarge", 6)))
    um = UnitManager(db, events, executor=executor)
    um.add_pilot(pilot)
    units = um.submit_units(
        [
            UnitDescription(name=f"job{i}", work=work, cores=8, scale=1.0)
            for i in range(N_JOBS)
        ]
    )
    t0 = time.perf_counter()
    um.run(units)
    wall = time.perf_counter() - t0
    um.close()
    assert all(u.state is UnitState.DONE for u in units)
    return wall, clock.now


@multicore
def test_process_backend_beats_serial_on_cpu_work(report_sink):
    serial_wall, serial_vtime = run_fanout("serial", cpu_work)
    # Warm the pool outside the timed region: fork+import overhead is a
    # fixed cost, not per-fan-out.
    from repro.parallel.executor import ProcessExecutor

    ex = ProcessExecutor()
    ex.submit(cpu_work).outcome()
    par_wall, par_vtime = run_fanout(ex, cpu_work)
    ex.shutdown()

    assert par_vtime == serial_vtime  # virtual time must not move
    report_sink.append(
        f"executor speedup (cpu, {os.cpu_count()} cores): "
        f"serial {serial_wall:.2f}s vs process {par_wall:.2f}s "
        f"({serial_wall / par_wall:.1f}x)"
    )
    assert par_wall < serial_wall


@multicore
def test_thread_backend_beats_serial_on_gil_releasing_work(report_sink):
    serial_wall, serial_vtime = run_fanout("serial", io_work)
    par_wall, par_vtime = run_fanout("thread", io_work)

    assert par_vtime == serial_vtime
    report_sink.append(
        f"executor speedup (io): serial {serial_wall:.2f}s vs thread "
        f"{par_wall:.2f}s ({serial_wall / par_wall:.1f}x)"
    )
    # 6 x 0.15s sleeps: serial >= 0.9s; the thread pool overlaps them.
    assert par_wall < serial_wall
