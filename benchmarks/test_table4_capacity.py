"""Table IV — instance-type capacity matrix.

Paper: O/X support matrix over {pre-processing, transcript assembly with
Ray/ABySS/Contrail, post-processing} x {B. glumae, P. crispa} x
{c3.2xlarge, r3.2xlarge}.  P. crispa fails everything except
post-processing on the 16 GB c3.2xlarge; everything fits the 61 GB
r3.2xlarge; B. glumae fits both.
"""

from repro.bench.harness import format_table
from repro.cloud.instances import get_instance_type
from repro.core.memory import fits_instance
from repro.seq.datasets import B_GLUMAE, P_CRISPA

#: The paper's Table IV ground truth: (task, dataset) -> (c3 cell, r3 cell).
PAPER_TABLE4 = {
    ("Pre-Processing", "B_glumae"): ("O", "O"),
    ("Pre-Processing", "P_crispa"): ("X", "O"),
    ("Assembly (Ray)", "B_glumae"): ("O", "O"),
    ("Assembly (Ray)", "P_crispa"): ("X", "O"),
    ("Assembly (ABySS)", "B_glumae"): ("O", "O"),
    ("Assembly (ABySS)", "P_crispa"): ("X", "O"),
    ("Assembly (Contrail)", "B_glumae"): ("O", "O"),
    ("Assembly (Contrail)", "P_crispa"): ("X", "O"),
    ("Post-Processing", "B_glumae"): ("O", "O"),
    ("Post-Processing", "P_crispa"): ("O", "O"),
}

_TASK_KEY = {
    "Pre-Processing": "preprocess",
    "Assembly (Ray)": "assembly",
    "Assembly (ABySS)": "assembly",
    "Assembly (Contrail)": "assembly",
    "Post-Processing": "postprocess",
}


def reproduce_table4() -> dict[tuple[str, str], tuple[str, str]]:
    c3 = get_instance_type("c3.2xlarge").memory_bytes
    r3 = get_instance_type("r3.2xlarge").memory_bytes
    out = {}
    for (task, ds_name) in PAPER_TABLE4:
        spec = {"B_glumae": B_GLUMAE, "P_crispa": P_CRISPA}[ds_name]
        key = _TASK_KEY[task]
        out[(task, ds_name)] = (
            "O" if fits_instance(spec, key, c3) else "X",
            "O" if fits_instance(spec, key, r3) else "X",
        )
    return out


def test_table4_capacity_matrix(benchmark, report_sink):
    ours = benchmark.pedantic(reproduce_table4, rounds=1, iterations=1)
    rows = [
        [task, ds, *cells, "/".join(PAPER_TABLE4[(task, ds)])]
        for (task, ds), cells in sorted(ours.items())
    ]
    table = format_table(
        "Table IV: instance capacity (O = supported, X = not supported)",
        ["Task", "Dataset", "c3.2xlarge", "r3.2xlarge", "paper c3/r3"],
        rows,
    )
    report_sink.append(table)
    print("\n" + table)

    # Every cell matches the paper.
    assert ours == PAPER_TABLE4


def test_table4_failure_is_oom_at_runtime(benchmark, ds_single):
    """The X cells are not just a static table: running the pipeline's
    pre-processing with a P. crispa-sized footprint on c3.2xlarge fails
    with an OOM through the pilot machinery (covered in depth by
    tests/core/test_pipeline.py::TestDynamicVsStatic)."""
    from repro.cloud.instances import get_instance_type
    from repro.core.memory import task_memory_bytes

    need = benchmark.pedantic(
        lambda: task_memory_bytes(P_CRISPA, "preprocess"),
        rounds=1, iterations=1,
    )
    assert need > get_instance_type("c3.2xlarge").memory_bytes
    assert need <= get_instance_type("r3.2xlarge").memory_bytes
