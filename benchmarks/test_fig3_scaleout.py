"""Fig. 3 — scale-out performance of the three assemblers.

Paper setup: P. crispa data (no pre-processing, except Contrail which
needs N-free input), k=51, c3.2xlarge nodes, TTC vs node count.

Expected shape (paper §IV.B.i):
* Contrail is "very slow and inefficient until the sufficient number of
  nodes are used"; as nodes are added its TTC "is becoming close" to the
  MPI assemblers,
* ABySS shows no dramatic scale-out gain, Ray a marginal one — the MPI
  assemblers' value is aggregate distributed *memory*, not speedup,
* ABySS is the fastest throughout.
"""

import functools

import pytest

from repro.bench import harness
from repro.bench.harness import format_figure

NODE_COUNTS = (2, 4, 8, 16)
K = 51
INSTANCE = "c3.2xlarge"


@functools.lru_cache(maxsize=1)
def fig3_series(cost_model=None):
    from repro.bench.calibration import calibrated_cost_model

    cm = cost_model or calibrated_cost_model()
    ds = harness.bench_dataset("P_crispa")
    series = {}
    for asm in ("ray", "abyss", "contrail"):
        pts = []
        for nodes in NODE_COUNTS:
            result = harness.run_assembly("P_crispa", asm, K, nodes * 8)
            ttc = harness.price_assembly(cm, result, ds, INSTANCE, nodes)
            pts.append((nodes, ttc))
        series[asm] = pts
    return series


def test_fig3_scaleout(benchmark, cost_model, report_sink):
    series = benchmark.pedantic(fig3_series, rounds=1, iterations=1)
    fig = format_figure(
        f"Fig. 3: assembler scale-out TTC(s) (P. crispa, k={K}, {INSTANCE})",
        "nodes",
        series,
    )
    report_sink.append(fig)
    print("\n" + fig)

    ray = dict(series["ray"])
    abyss = dict(series["abyss"])
    contrail = dict(series["contrail"])

    # ABySS fastest everywhere; Contrail slowest at small node counts.
    for n in NODE_COUNTS:
        assert abyss[n] < ray[n]
    assert contrail[2] > ray[2] > abyss[2]

    # MPI assemblers scale weakly: 8x more nodes buys < 2x speedup.
    assert ray[2] / ray[16] < 2.0
    assert abyss[2] / abyss[16] < 3.0
    # Ray's gain is marginal but monotone.
    assert ray[16] < ray[2]

    # Contrail scales strongly and converges toward the MPI assemblers.
    assert contrail[2] / contrail[16] > 3.0
    assert contrail[16] / contrail[2] < 0.35
    assert contrail[16] < 2.0 * ray[16]


def test_fig3_contrail_requires_preprocessed_input(benchmark):
    """The paper notes Contrail failed on raw reads containing N; the
    N-failure is modeled and raised."""
    from repro.assembly.base import AssemblyParams
    from repro.assembly.contrail import ContrailAssembler, ContrailInputError

    ds = benchmark.pedantic(
        lambda: harness.bench_dataset("P_crispa"), rounds=1, iterations=1
    )
    raw = ds.run.all_reads()
    assert any("N" in r.seq for r in raw)
    with pytest.raises(ContrailInputError):
        ContrailAssembler().assemble(
            raw[:500], AssemblyParams(k=K, min_contig_length=100),
            n_ranks=4, fail_on_n=True,
        )
