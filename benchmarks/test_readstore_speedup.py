"""Encode-once ReadStore + assembly cache speedup on the MAMP fan-out.

The measured workload is the paper's sample-run shape — "the total 6
jobs, corresponding to two k-mer assemblies for each assembler" — run
TWICE through the process backend, the way S2 VM reuse, pilot restarts
and repeated benchmark sweeps re-run it over byte-identical inputs:

* **old path** — every workload carries its own ``tuple[FastqRecord]``
  (re-pickled per unit per sweep, re-encoded inside every assembler) and
  the assembly cache is off: sweep two repeats all six assemblies.
* **new path** — the reads are encoded once into a shared-memory
  :class:`~repro.seq.readstore.ReadStore` (every workload pickles to a
  constant-size handle) and the content-addressed
  :class:`~repro.core.assembly_cache.AssemblyCache` turns sweep two into
  six hits.

Both paths must produce bit-identical contigs, stats, usage (hence comm
bytes) and virtual TTCs — the speedup is host-side only.  Results are
written to ``BENCH_readstore.json`` at the repo root (skipped under
``--smoke``, which also shrinks the input and relaxes the floor).
"""

import json
import pickle
import time
from pathlib import Path

from repro.assembly.base import AssemblyParams
from repro.cloud.clock import EventQueue, SimClock
from repro.cloud.ec2 import EC2Region
from repro.core.assembly_cache import AssemblyCache, use_assembly_cache
from repro.core.multikmer import AssemblyWorkload, collect_assembly_results
from repro.parallel.executor import ProcessExecutor
from repro.pilot.db import StateStore
from repro.pilot.description import PilotDescription, UnitDescription
from repro.pilot.manager import PilotManager, UnitManager
from repro.pilot.states import UnitState
from repro.seq.readstore import ReadStore

JOBS = [(a, k) for a in ("ray", "abyss", "velvet") for k in (31, 37)]
SMOKE_JOBS = [(a, k) for a in ("ray", "abyss", "velvet") for k in (21, 25)]
N_SWEEPS = 2
N_RANKS = 4
MIN_SPEEDUP = 1.5
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_readstore.json"


def _descs(jobs, workload_for):
    return [
        UnitDescription(
            name=f"{name}_k{k}",
            work=workload_for(name, k),
            cores=8,
            scale=1.0,
            stage="transcript-assembly",
            tags={"assembler": name, "k": k},
        )
        for name, k in jobs
    ]


def _run_sweep(descs):
    """One fan-out through the full pilot machinery on a fresh process
    pool (fresh per sweep: workers fork after the parent cache was
    populated, so sweep two sees the collected results copy-on-write)."""
    clock = SimClock()
    events = EventQueue(clock)
    region = EC2Region(clock)
    db = StateStore(clock)
    pm = PilotManager(region, events, db)
    pilot = pm.launch(pm.submit(PilotDescription("P", "c3.2xlarge", len(descs))))
    with ProcessExecutor() as executor:
        um = UnitManager(db, events, executor=executor)
        um.add_pilot(pilot)
        units = um.submit_units(descs)
        um.run(units)
        um.close()
    assert all(u.state is UnitState.DONE for u in units)
    return units, clock.now


def _sweep_path(jobs, workload_for):
    """Run N_SWEEPS identical fan-outs; returns (wall, per-sweep units,
    per-sweep virtual end times)."""
    all_units, vtimes = [], []
    t0 = time.perf_counter()
    for _ in range(N_SWEEPS):
        units, vnow = _run_sweep(_descs(jobs, workload_for))
        collect_assembly_results(units)  # parent-side cache population
        all_units.append(units)
        vtimes.append(vnow)
    return time.perf_counter() - t0, all_units, vtimes


def _psize(work):
    return len(pickle.dumps(work, protocol=pickle.HIGHEST_PROTOCOL))


def test_readstore_and_cache_speedup(ds_single, report_sink, smoke):
    jobs = SMOKE_JOBS if smoke else JOBS
    reads = ds_single.run.all_reads()
    if smoke:
        reads = reads[:800]
    ds = ds_single

    def old_workload(name, k):
        return AssemblyWorkload(
            assembler_name=name,
            params=AssemblyParams(k=k, min_contig_length=100),
            n_ranks=N_RANKS,
            reads=tuple(reads),
            read_scale=ds.read_scale,
            graph_scale=ds.scale,
            use_cache=False,
        )

    store = ReadStore.from_reads(reads)

    def new_workload(name, k):
        return AssemblyWorkload(
            assembler_name=name,
            params=AssemblyParams(k=k, min_contig_length=100),
            n_ranks=N_RANKS,
            store=store,
            read_scale=ds.read_scale,
            graph_scale=ds.scale,
        )

    try:
        old_wall, old_units, old_vtimes = _sweep_path(jobs, old_workload)
        with use_assembly_cache(cache := AssemblyCache()):
            new_wall, new_units, new_vtimes = _sweep_path(jobs, new_workload)
    finally:
        store.close()
    speedup = old_wall / new_wall

    # Sweep two of the new path must have been served from the cache.
    assert len(cache) == len(jobs)

    # -- parity: the optimisation must be invisible to every virtual
    # quantity, across paths AND across sweeps within a path.
    assert len(set(old_vtimes + new_vtimes)) == 1  # one virtual TTC
    baseline = old_units[0]
    for units in old_units[1:] + new_units:
        for u, b in zip(units, baseline):
            assert u.description.name == b.description.name
            assert u.result.contigs == b.result.contigs
            assert u.result.stats == b.result.stats
            assert u.usage == b.usage
            assert u.usage.comm_bytes == b.usage.comm_bytes
            assert u.ttc == b.ttc

    # -- the workloads themselves: O(1) handle vs O(reads) records.
    old_bytes = _psize(old_workload(*jobs[0]))
    store2 = ReadStore.from_reads(reads)
    try:
        new_bytes = _psize(
            AssemblyWorkload(
                assembler_name=jobs[0][0],
                params=AssemblyParams(k=jobs[0][1], min_contig_length=100),
                n_ranks=N_RANKS,
                store=store2,
            )
        )
    finally:
        store2.close()

    report_sink.append(
        f"readstore+cache speedup ({len(jobs)} units x {N_SWEEPS} sweeps, "
        f"{len(reads)} reads): old {old_wall:.2f}s vs new {new_wall:.2f}s "
        f"({speedup:.2f}x); pickled workload {old_bytes} -> {new_bytes} B"
    )

    if not smoke:
        record = {
            "workload": {
                "n_reads": len(reads),
                "jobs": [f"{a}_k{k}" for a, k in jobs],
                "n_sweeps": N_SWEEPS,
                "n_ranks": N_RANKS,
                "backend": "process",
            },
            "old_path_wall_s": round(old_wall, 3),
            "new_path_wall_s": round(new_wall, 3),
            "speedup": round(speedup, 2),
            "min_required_speedup": MIN_SPEEDUP,
            "cache_hits_second_sweep": len(jobs),
            "pickled_workload_bytes": {"old": old_bytes, "new": new_bytes},
            "parity": "contigs, stats, usage, comm bytes and virtual TTCs "
            "identical across paths and sweeps",
        }
        RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert new_bytes < 2048 < old_bytes
    assert speedup >= (1.0 if smoke else MIN_SPEEDUP)
