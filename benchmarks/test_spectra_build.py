"""Spectrum-construction speedup over the PR-7 build, with fan-out parity.

The measured quantity is the wall time of :func:`repro.assembly.sweep.
build_spectra` on the Fig. 4 multi-k workload's k set against a *pinned*
reimplementation of the previous build algorithm (``_pr7_build_spectra``
below — the allocating per-iteration packing loop plus the
``return_index`` ``np.unique`` call and its ``rows[first]`` gather).  The
optimizations under test are single-threaded and algorithmic, so the
floor holds on a one-core runner:

* the kmax packing loop runs strictly in place on one pre-upcast uint64
  array (no per-iteration temporaries);
* the distinct rows are reconstructed from the sorted unique *keys*
  (``keys_to_packed`` is an exact inverse), skipping the extra argsort
  ``return_index`` forces and the first-occurrence gather;
* ``from_rows`` keeps already-contiguous arrays and int64 inputs as-is.

The sharded pool build (``n_shards`` workers over read-range shards,
radix-bucket merge) is timed informationally — on a single-core host the
pickle + merge overhead can exceed the fork-level parallel win, and its
value there is provisioning *overlap*, not raw build speed.

Parity: two full pilot fan-outs of the 7-job Fig. 4 MAMP workload — one
served from the pinned-baseline spectra, one from the new build — must
produce bit-identical contigs, stats, usage and virtual TTCs, and the
sharded spectra must equal the serial ones array-for-array.  Results
land in ``BENCH_spectra.json`` (full tier) / ``BENCH_spectra.smoke.json``
(``--smoke``; smaller input, relaxed floor).
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.assembly import packed as packedmod
from repro.assembly.base import AssemblyParams
from repro.assembly.sweep import KmerSpectrum, build_spectra
from repro.assembly.trinity import TRINITY_K
from repro.cloud.clock import EventQueue, SimClock
from repro.cloud.ec2 import EC2Region
from repro.core.assembly_cache import use_assembly_cache
from repro.core.multikmer import AssemblyWorkload
from repro.parallel.executor import ProcessExecutor
from repro.pilot.db import StateStore
from repro.pilot.description import PilotDescription, UnitDescription
from repro.pilot.manager import PilotManager, UnitManager
from repro.pilot.states import UnitState
from repro.seq import alphabet
from repro.seq.datasets import tiny_dataset
from repro.seq.readstore import ReadStore

#: Same 7-job shape as BENCH_multik: three pipeline assemblers at two k
#: values plus the Trinity baseline at its fixed k.
JOBS = [(a, k) for a in ("ray", "abyss", "velvet") for k in (25, 31)]
JOBS += [("trinity", TRINITY_K)]
N_RANKS = 4
MIN_COUNT = 3
MIN_SPEEDUP = 1.5
BUILD_REPS = 3
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_spectra.json"
SMOKE_RESULT_PATH = RESULT_PATH.with_suffix(".smoke.json")


# ---------------------------------------------------------------------------
# Pinned PR-7 build algorithm (the baseline under comparison).  This is a
# frozen copy of the previous fused extraction + from_rows code path; it
# must NOT be "fixed" to track src/ — it exists so the speedup is measured
# against a stable reference.
# ---------------------------------------------------------------------------


def _pr7_fused_positions(codes, ks):
    codes = np.asarray(codes, dtype=np.uint8)
    ks = sorted({int(k) for k in ks})
    U = np.uint64
    ones = U(0xFFFFFFFFFFFFFFFF)
    T = codes.shape[0]
    kmax = ks[-1]
    nbad = np.zeros(T + 1, dtype=np.int64)
    if T:
        nbad[1:] = np.cumsum(codes >= alphabet.N, dtype=np.int64)
    san = codes & np.uint8(3)
    n_main = max(T - kmax + 1, 0)
    W = packedmod.words_for(kmax)
    main0 = np.zeros(n_main, dtype=U)
    main1 = np.zeros(n_main, dtype=U) if W == 2 else None
    if n_main:
        k0 = min(kmax, 32)
        w = np.zeros(n_main, dtype=U)
        for i in range(k0):
            # The pinned loop: one fresh temporary per iteration for the
            # shift, the upcast and the or — the allocation traffic the
            # new in-place loop removes.
            w = (w << U(2)) | san[i : i + n_main].astype(U)
        main0 = w << U(2 * (32 - k0))
        if W == 2:
            w = np.zeros(n_main, dtype=U)
            for i in range(32, kmax):
                w = (w << U(2)) | san[i : i + n_main].astype(U)
            main1 = w << U(128 - 2 * kmax)
    out = {}
    for k in ks:
        Wk = packedmod.words_for(k)
        n_k = max(T - k + 1, 0)
        if n_k == 0:
            out[k] = (np.zeros((0, Wk), dtype=U), np.zeros(0, dtype=np.int64))
            continue
        valid = nbad[k : k + n_k] - nbad[:n_k] == 0
        pos = np.flatnonzero(valid).astype(np.int64)
        main_sel = pos[pos < n_main]
        tail_sel = pos[pos >= n_main]
        rows = np.empty((pos.shape[0], Wk), dtype=U)
        nm = main_sel.shape[0]
        if Wk == 1:
            rows[:nm, 0] = main0[main_sel] & (ones << U(64 - 2 * k))
        else:
            rows[:nm, 0] = main0[main_sel]
            rows[:nm, 1] = main1[main_sel] & (ones << U(128 - 2 * k))
        if tail_sel.shape[0]:
            wins = np.lib.stride_tricks.sliding_window_view(san, k)[tail_sel]
            rows[nm:] = packedmod.pack(wins)
        out[k] = (packedmod.canonicalize(rows, k), pos)
    return out


def _pr7_spectrum_from_rows(store, k, rows, positions):
    key_arr = packedmod.keys(rows, k)
    _, first, inverse, counts = np.unique(
        key_arr, return_index=True, return_inverse=True, return_counts=True
    )
    distinct = np.ascontiguousarray(rows[first])
    offsets = store.offsets
    read_of = np.searchsorted(offsets, positions, side="right") - 1
    per_read = np.bincount(read_of, minlength=store.n_reads)
    read_offsets = np.zeros(store.n_reads + 1, dtype=np.int64)
    np.cumsum(per_read, out=read_offsets[1:])
    rel_positions = positions - offsets[read_of]
    spectrum = KmerSpectrum(
        k=k,
        store_digest=store.digest,
        distinct=distinct,
        counts=counts.astype(np.int64),
        inverse=inverse.astype(np.int64).ravel(),
        read_offsets=read_offsets,
        rel_positions=rel_positions.astype(np.int64),
    )
    for arr in (
        spectrum._distinct,
        spectrum._counts,
        spectrum._inverse,
        spectrum._read_offsets,
        spectrum._rel_positions,
    ):
        arr.flags.writeable = False
    return spectrum


def _pr7_build_spectra(store, ks):
    ks = tuple(sorted({int(k) for k in ks}))
    fused = _pr7_fused_positions(store.codes, ks)
    return tuple(_pr7_spectrum_from_rows(store, k, *fused[k]) for k in ks)


# ---------------------------------------------------------------------------


def _descs(jobs, store, spectra):
    descs = []
    for name, k in jobs:
        want_k = TRINITY_K if name == "trinity" else k
        descs.append(
            UnitDescription(
                name=f"{name}_k{k}",
                work=AssemblyWorkload(
                    assembler_name=name,
                    params=AssemblyParams(
                        k=k, min_count=MIN_COUNT, min_contig_length=100
                    ),
                    n_ranks=N_RANKS,
                    store=store,
                    use_cache=False,
                    spectra=tuple(sp for sp in spectra if sp.k == want_k),
                ),
                cores=8,
                scale=1.0,
                stage="transcript-assembly",
                tags={"assembler": name, "k": k},
            )
        )
    return descs


def _run_fanout(descs):
    """One fan-out through the full pilot machinery on a fresh pool."""
    clock = SimClock()
    events = EventQueue(clock)
    region = EC2Region(clock)
    db = StateStore(clock)
    pm = PilotManager(region, events, db)
    pilot = pm.launch(pm.submit(PilotDescription("P", "c3.2xlarge", len(descs))))
    with ProcessExecutor() as executor:
        um = UnitManager(db, events, executor=executor)
        um.add_pilot(pilot)
        units = um.submit_units(descs)
        um.run(units)
        um.close()
    assert all(u.state is UnitState.DONE for u in units)
    return units, clock.now


def _time_build(builder, reps):
    """min-of-reps wall time; the last rep's spectra are returned."""
    best = float("inf")
    spectra = None
    for _ in range(reps):
        if spectra is not None:
            for sp in spectra:
                sp.close()
        t0 = time.perf_counter()
        spectra = builder()
        best = min(best, time.perf_counter() - t0)
    return best, spectra


def _assert_spectra_equal(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.k == w.k
        np.testing.assert_array_equal(g.distinct, w.distinct)
        np.testing.assert_array_equal(g.counts, w.counts)
        np.testing.assert_array_equal(g.inverse, w.inverse)
        np.testing.assert_array_equal(g.read_offsets, w.read_offsets)
        np.testing.assert_array_equal(g.rel_positions, w.rel_positions)


def test_spectra_build_speedup(report_sink, smoke):
    ds = tiny_dataset(paired=False, seed=1, coverage_boost=1.0 if smoke else 20.0)
    reads = ds.run.all_reads()
    if smoke:
        reads = reads[:800]
    store = ReadStore.from_reads(reads)
    ks = sorted({TRINITY_K if a == "trinity" else k for a, k in JOBS})

    try:
        base_s, base_spectra = _time_build(
            lambda: _pr7_build_spectra(store, ks), BUILD_REPS
        )
        serial_s, serial_spectra = _time_build(
            lambda: build_spectra(store, ks), BUILD_REPS
        )
        # Sharded pool build: informational timing, gated only on parity.
        t0 = time.perf_counter()
        with ProcessExecutor(max_workers=2) as ex:
            sharded_spectra = build_spectra(store, ks, executor=ex)
        sharded_s = time.perf_counter() - t0

        _assert_spectra_equal(serial_spectra, base_spectra)
        _assert_spectra_equal(sharded_spectra, base_spectra)
        for sp in sharded_spectra:
            sp.close()

        # -- fan-out parity: the faster build must be invisible to every
        # virtual quantity of the Fig. 4 MAMP workload.
        with use_assembly_cache(None):
            base_units, base_vtime = _run_fanout(_descs(JOBS, store, base_spectra))
            new_units, new_vtime = _run_fanout(_descs(JOBS, store, serial_spectra))
        assert base_vtime == new_vtime
        for b, f in zip(base_units, new_units):
            assert b.description.name == f.description.name
            assert b.result.contigs == f.result.contigs
            assert b.result.stats == f.result.stats
            assert b.usage == f.usage
            assert b.ttc == f.ttc
        for sp in base_spectra:
            sp.close()
        for sp in serial_spectra:
            sp.close()
    finally:
        store.close()

    speedup = base_s / serial_s
    report_sink.append(
        f"spectrum build ({len(reads)} reads, ks={ks}): pinned PR-7 "
        f"{base_s:.3f}s vs serial {serial_s:.3f}s ({speedup:.2f}x), "
        f"sharded(2) {sharded_s:.3f}s"
    )

    record = {
        "workload": {
            "n_reads": len(reads),
            "jobs": [f"{a}_k{k}" for a, k in JOBS],
            "ks": ks,
            "tier": "smoke" if smoke else "full",
            "build_reps": BUILD_REPS,
        },
        "pr7_build_wall_s": round(base_s, 4),
        "serial_build_wall_s": round(serial_s, 4),
        "sharded_build_wall_s": round(sharded_s, 4),
        "sharded_n_shards": 2,
        "speedup": round(speedup, 2),
        "min_required_speedup": 0.8 if smoke else MIN_SPEEDUP,
        "parity": "spectra arrays, contigs, stats, usage and virtual TTCs "
        "identical across builds",
    }
    path = SMOKE_RESULT_PATH if smoke else RESULT_PATH
    path.write_text(json.dumps(record, indent=2) + "\n")

    # The smoke tier proves parity and writes the artifact; only the full
    # tier is large enough for a stable wall-clock floor.
    assert speedup >= (0.8 if smoke else MIN_SPEEDUP)
