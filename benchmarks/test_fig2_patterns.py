"""Fig. 2 — the three pilot-based workflow patterns.

The paper distinguishes the conventional pattern (all pilots on one
system), the distributed static pattern (pre-defined multi-resource
mapping) and the distributed dynamic pattern (per-stage decisions from
runtime information).  The reproduction runs the same B. glumae workload
under each pattern and compares TTC; the dynamic pattern's value on
memory-gated data (choosing r3.2xlarge for P. crispa) is exercised by the
pipeline test suite and by Table IV.
"""

import functools

import pytest

from repro.bench.harness import bench_dataset, format_table
from repro.core.rnnotator import PipelineConfig, RnnotatorPipeline
from repro.core.schemes import MatchingScheme
from repro.core.workflow import WorkflowPattern

KS = (35, 41, 47)


@functools.lru_cache(maxsize=1)
def pattern_results():
    from repro.bench.calibration import calibrated_cost_model

    ds = bench_dataset("B_glumae")
    cm = calibrated_cost_model()
    runs = {}
    # Conventional: everything on a single fixed node (jobs serialize).
    runs["conventional"] = RnnotatorPipeline(cm).run(
        ds,
        PipelineConfig(
            assemblers=("ray",), kmer_list=KS,
            workflow=WorkflowPattern.CONVENTIONAL,
            scheme=MatchingScheme.S2,
            instance_type="c3.2xlarge",
            max_nodes=1,
        ),
    )
    # Distributed static: fixed instance type, pre-defined fleet sizing.
    runs["static"] = RnnotatorPipeline(cm).run(
        ds,
        PipelineConfig(
            assemblers=("ray",), kmer_list=KS,
            workflow=WorkflowPattern.DISTRIBUTED_STATIC,
            scheme=MatchingScheme.S2,
            instance_type="c3.2xlarge",
        ),
    )
    # Distributed dynamic: instance + fleet decided from runtime info.
    runs["dynamic"] = RnnotatorPipeline(cm).run(
        ds,
        PipelineConfig(
            assemblers=("ray",), kmer_list=KS,
            workflow=WorkflowPattern.DISTRIBUTED_DYNAMIC,
            scheme=MatchingScheme.S2,
        ),
    )
    return runs


def test_fig2_workflow_patterns(benchmark, report_sink):
    runs = benchmark.pedantic(pattern_results, rounds=1, iterations=1)
    rows = [
        [
            name,
            r.plan.n_nodes,
            f"{r.stage_ttc('transcript-assembly'):.0f}",
            f"{r.total_ttc:.0f}",
            f"{r.total_cost:.2f}",
        ]
        for name, r in runs.items()
    ]
    table = format_table(
        f"Fig. 2: workflow patterns (B. glumae, ray, k={list(KS)})",
        ["Pattern", "assembly nodes", "assembly TTC(s)", "total TTC(s)",
         "cost USD"],
        rows,
    )
    report_sink.append(table)
    print("\n" + table)

    conv, stat, dyn = runs["conventional"], runs["static"], runs["dynamic"]
    # Distributed patterns beat the conventional single-system pattern by
    # running the k-mer jobs concurrently.
    assert stat.stage_ttc("transcript-assembly") < conv.stage_ttc(
        "transcript-assembly"
    )
    assert dyn.stage_ttc("transcript-assembly") < conv.stage_ttc(
        "transcript-assembly"
    )
    assert stat.total_ttc < conv.total_ttc
    # For B. glumae the dynamic planner also lands on c3.2xlarge (it is
    # the cheapest type whose memory fits), so static == dynamic here.
    assert dyn.stages[1].instance_type == "c3.2xlarge"
    assert dyn.total_ttc == pytest.approx(stat.total_ttc, rel=0.05)
    # Functional output identical across patterns.
    assert [t.seq for t in conv.transcripts] == [
        t.seq for t in stat.transcripts
    ] == [t.seq for t in dyn.transcripts]


def test_fig2_conventional_serializes_jobs(benchmark):
    runs = benchmark.pedantic(pattern_results, rounds=1, iterations=1)
    conv, stat = runs["conventional"], runs["static"]
    # Serialized jobs take sum(t_k); the distributed stage takes max(t_k).
    # The ratio stays well below the job count because the k-mer jobs are
    # heterogeneous (k=35 processes ~4x the k-mers of k=47) — exactly the
    # "optimization problem for heterogeneous tasks" the paper discusses.
    ratio = conv.stage_ttc("transcript-assembly") / stat.stage_ttc(
        "transcript-assembly"
    )
    assert 1.3 < ratio < len(KS)
