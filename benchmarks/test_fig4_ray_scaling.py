"""Fig. 4 — the two parallelism levels of the transcript assembly step.

Upper panel: Ray TTC vs core count for several input sizes (fractions of
the P. crispa data) — data-level parallelism inside one assembly job.

Lower panel: TTC of the whole multi-k assembly stage (the four P. crispa
k values, one Ray job each) vs cluster node count — task-level
parallelism across k-mer jobs, scheduled through SGE exactly like the
pipeline does.  The paper's finding: adding nodes keeps helping (3 nodes
still beat 2) because independent k-mer jobs run concurrently, even when
a single MPI job gains little.

Instance type: r3.2xlarge (as in the paper's Fig. 4).
"""

import functools

import pytest

from repro.bench import harness
from repro.bench.harness import format_figure
from repro.cloud.clock import EventQueue, SimClock
from repro.cloud.sge import SGEJob, SGEScheduler

INSTANCE = "r3.2xlarge"
FRACTIONS = (0.25, 0.5, 1.0)
CORE_COUNTS = (8, 16, 24, 32)
KMER_LIST = (51, 55, 59, 63)
NODE_COUNTS = (1, 2, 3, 4)


@functools.lru_cache(maxsize=1)
def upper_panel():
    from repro.bench.calibration import calibrated_cost_model

    cm = calibrated_cost_model()
    series = {}
    for frac in FRACTIONS:
        ds = harness.bench_dataset("P_crispa", fraction=frac)
        pts = []
        for cores in CORE_COUNTS:
            result = harness.run_assembly(
                "P_crispa", "ray", 51, cores, fraction=frac
            )
            ttc = harness.price_assembly(cm, result, ds, INSTANCE, cores // 8)
            pts.append((cores, ttc))
        series[f"{int(frac * 100)}% reads"] = pts
    return series


def job_durations() -> dict[int, float]:
    """Paper-scale TTC of each single-node Ray k-mer job."""
    from repro.bench.calibration import calibrated_cost_model

    cm = calibrated_cost_model()
    ds = harness.bench_dataset("P_crispa")
    return {
        k: harness.price_assembly(
            cm, harness.run_assembly("P_crispa", "ray", k, 8), ds, INSTANCE, 1
        )
        for k in KMER_LIST
    }


@functools.lru_cache(maxsize=1)
def lower_panel():
    """Multi-k stage TTC vs node count, via the SGE scheduler."""
    durations = job_durations()
    pts = []
    for nodes in NODE_COUNTS:
        events = EventQueue(SimClock())
        sched = SGEScheduler(events, {f"n{i}": 8 for i in range(nodes)})
        for k, seconds in durations.items():
            sched.qsub(SGEJob(f"ray_k{k}", slots=8, duration=seconds))
        sched.run_to_completion()
        pts.append((nodes, events.clock.now))
    return {"4 k-mer jobs (Ray)": pts}


def test_fig4_upper_ray_data_parallelism(benchmark, report_sink):
    series = benchmark.pedantic(upper_panel, rounds=1, iterations=1)
    fig = format_figure(
        f"Fig. 4 (upper): Ray TTC(s) vs cores, input fractions ({INSTANCE})",
        "cores",
        series,
    )
    report_sink.append(fig)
    print("\n" + fig)

    # More input -> more time, at every core count.
    q, h, f = (dict(series[s]) for s in series)
    for cores in CORE_COUNTS:
        assert q[cores] < h[cores] < f[cores]
    # Scale-out behaviour is uniform across input sizes (the paper:
    # "such a behavior is uniformly expected regardless of the data
    # size"): weak but monotone gains.
    for d in (q, h, f):
        assert d[32] <= d[8]
        assert d[8] / d[32] < 2.5


def test_fig4_lower_task_level_parallelism(benchmark, report_sink):
    series = benchmark.pedantic(lower_panel, rounds=1, iterations=1)
    fig = format_figure(
        "Fig. 4 (lower): multi-k assembly stage TTC(s) vs nodes "
        f"(k={list(KMER_LIST)}, {INSTANCE})",
        "nodes",
        series,
    )
    report_sink.append(fig)
    print("\n" + fig)

    ttc = dict(series["4 k-mer jobs (Ray)"])
    # Task-level parallelism: real gains from 1 -> 2 nodes, and 3 nodes
    # still beat 2 (the paper calls this out explicitly).
    assert ttc[2] < ttc[1]
    assert ttc[3] < ttc[2]
    assert ttc[4] <= ttc[3]
    # With 4 nodes all 4 jobs run concurrently: stage TTC == slowest job.
    assert ttc[4] == pytest.approx(max(job_durations().values()), rel=0.01)
    # 1 node serializes all jobs: stage TTC == sum of jobs.
    assert ttc[1] == pytest.approx(sum(job_durations().values()), rel=0.01)
